package isasim

import (
	"testing"
	"testing/quick"

	"bespoke/internal/asm"
	"bespoke/internal/msp430"
)

// The properties below check ALU semantics against an independent
// reference implementation (written directly from the MSP430 family
// user's guide flag rules), by assembling tiny programs that set up
// operands, execute one instruction, and dump the result and SR.

// refFlags computes (C,Z,N,V) for an add of a+b+carry at the given width.
func refAddFlags(a, b uint16, carry bool, byteOp bool) (r uint16, c, z, n, v bool) {
	width := uint(16)
	if byteOp {
		width = 8
		a &= 0xFF
		b &= 0xFF
	}
	mask := uint32(1)<<width - 1
	msb := uint32(1) << (width - 1)
	sum := uint32(a) + uint32(b)
	if carry {
		sum++
	}
	r = uint16(sum & mask)
	c = sum > mask
	z = uint32(r) == 0
	n = uint32(r)&msb != 0
	v = (uint32(a)&msb == uint32(b)&msb) && (uint32(r)&msb != uint32(a)&msb)
	return
}

// execOne runs a single-instruction probe and returns (result, SR).
func execOne(t *testing.T, setup string) (uint16, uint16) {
	t.Helper()
	src := `
        .org 0xE000
start:  mov #0x5A80, &WDTCTL
        mov #STACKTOP, sp
` + setup + `
        mov r10, &OUTPORT
        mov r2, &OUTPORT
        dint
        jmp $
        .org 0xFFFE
        .word start
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("%v in:\n%s", err, src)
	}
	m := New(p.Bytes, p.Origin)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(m.Out) != 2 {
		t.Fatalf("out = %v", m.Out)
	}
	return m.Out[0], m.Out[1]
}

func flagsOf(sr uint16) (c, z, n, v bool) {
	return sr&msp430.FlagC != 0, sr&msp430.FlagZ != 0, sr&msp430.FlagN != 0, sr&msp430.FlagV != 0
}

func TestAddFlagsProperty(t *testing.T) {
	f := func(a, b uint16, byteOp bool) bool {
		suffix := ""
		if byteOp {
			suffix = ".b"
		}
		setup := "        clrc\n"
		setup += "        mov #" + hex(b) + ", r10\n"
		setup += "        add" + suffix + " #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		wantR, wc, wz, wn, wv := refAddFlags(a, b, false, byteOp)
		c, z, n, v := flagsOf(sr)
		return got == wantR && c == wc && z == wz && n == wn && v == wv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubIsAddOfComplement(t *testing.T) {
	f := func(a, b uint16) bool {
		setup := "        mov #" + hex(b) + ", r10\n"
		setup += "        sub #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		wantR, wc, wz, wn, wv := refAddFlags(^a, b, true, false)
		c, z, n, v := flagsOf(sr)
		return got == wantR && c == wc && z == wz && n == wn && v == wv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCmpLeavesDst(t *testing.T) {
	f := func(a, b uint16) bool {
		setup := "        mov #" + hex(b) + ", r10\n"
		setup += "        cmp #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		_, wc, wz, wn, wv := refAddFlags(^a, b, true, false)
		c, z, n, v := flagsOf(sr)
		return got == b && c == wc && z == wz && n == wn && v == wv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLogicFlagsProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		// AND: C = result nonzero, V = 0.
		setup := "        mov #" + hex(b) + ", r10\n"
		setup += "        and #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		r := a & b
		c, z, n, v := flagsOf(sr)
		return got == r && c == (r != 0) && z == (r == 0) && n == (r&0x8000 != 0) && !v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestXorOverflowProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		setup := "        mov #" + hex(b) + ", r10\n"
		setup += "        xor #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		r := a ^ b
		_, _, _, v := flagsOf(sr)
		// V set iff both operands negative.
		return got == r && v == (a&0x8000 != 0 && b&0x8000 != 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSwpbRraRoundTrips(t *testing.T) {
	f := func(b uint16) bool {
		// swpb twice is the identity.
		setup := "        mov #" + hex(b) + ", r10\n        swpb r10\n        swpb r10\n"
		got, _ := execOne(t, setup)
		if got != b {
			return false
		}
		// rra is an arithmetic shift right.
		setup = "        mov #" + hex(b) + ", r10\n        rra r10\n"
		got, _ = execOne(t, setup)
		want := b>>1 | b&0x8000
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDaddMatchesBCD(t *testing.T) {
	f := func(a, b uint16) bool {
		// Constrain to valid BCD digits.
		a, b = toBCD(a), toBCD(b)
		setup := "        clrc\n        mov #" + hex(b) + ", r10\n"
		setup += "        dadd #" + hex(a) + ", r10\n"
		got, sr := execOne(t, setup)
		want, carry := bcdAdd(a, b)
		c, _, _, _ := flagsOf(sr)
		return got == want && c == carry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func toBCD(v uint16) uint16 {
	var out uint16
	for d := 0; d < 4; d++ {
		out |= (v >> (4 * d) % 10 & 0xF) << (4 * d)
	}
	return out
}

func bcdAdd(a, b uint16) (uint16, bool) {
	carry := uint16(0)
	var out uint16
	for d := 0; d < 4; d++ {
		s := a>>(4*uint(d))&0xF + b>>(4*uint(d))&0xF + carry
		if s >= 10 {
			s -= 10
			carry = 1
		} else {
			carry = 0
		}
		out |= s << (4 * uint(d))
	}
	return out, carry == 1
}

func hex(v uint16) string {
	const digits = "0123456789abcdef"
	return "0x" + string([]byte{
		digits[v>>12&0xF], digits[v>>8&0xF], digits[v>>4&0xF], digits[v&0xF],
	})
}
