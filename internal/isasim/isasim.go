// Package isasim is a functional, instruction-level MSP430 simulator.
// It is the golden reference model: the gate-level core of internal/cpu
// is co-simulated against it instruction by instruction, and the
// verification and mutation infrastructure run on it for speed.
//
// Architectural semantics (operand order, flag rules, peripheral
// behavior, interrupt entry) are defined here and implemented
// identically, in gates, by internal/cpu.
package isasim

import (
	"fmt"

	"bespoke/internal/msp430"
)

// Machine is one MSP430 system instance: CPU, 64 KiB address space and
// the modeled peripherals.
type Machine struct {
	Regs [16]uint16
	// Mem backs RAM and ROM. Peripheral registers live outside it.
	Mem [65536]byte

	// Peripherals.
	P1In, P1Out, P1Dir uint16
	IE, IFG            uint16
	WDTCtl             uint16
	WDTCount           uint32
	BCSCtl             uint16
	MpyOp1, MpyOp2     uint16
	MpyMode            MpyMode
	ResLo, ResHi       uint16
	SumExt             uint16
	DbgCtl, DbgBrk     uint16
	DbgHits            uint16
	DbgSteps           uint16
	DbgScratch         [4]uint16

	// Out is the observable output stream: every value written to
	// OUTPORT in order.
	Out []uint16

	irqLine [msp430.NumIRQVec]bool

	// Halted is set when the program reaches a jmp-to-self with
	// interrupts disabled (the testbench termination convention).
	Halted bool
	// Insts counts executed instructions; Cycles estimates machine
	// cycles using the gate-level core's state sequence lengths.
	Insts  uint64
	Cycles uint64
}

// MpyMode selects the hardware multiplier operation.
type MpyMode uint8

// Multiplier modes, per the MSP430 hardware multiplier register map.
const (
	MpyUnsigned MpyMode = iota
	MpySigned
	MpyAccumulate
)

// New returns a machine with the image loaded into ROM and the CPU at
// the reset vector.
func New(image []byte, loadAddr uint16) *Machine {
	m := &Machine{}
	copy(m.Mem[loadAddr:], image)
	m.Reset()
	return m
}

// Reset re-enters the power-on state (ROM contents preserved).
func (m *Machine) Reset() {
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	for a := int(msp430.RAMStart); a <= int(msp430.RAMEnd); a++ {
		m.Mem[a] = 0
	}
	m.P1In, m.P1Out, m.P1Dir = 0, 0, 0
	m.IE, m.IFG = 0, 0
	m.WDTCtl, m.WDTCount, m.BCSCtl = 0, 0, 0
	m.MpyOp1, m.MpyOp2, m.MpyMode = 0, 0, MpyUnsigned
	m.ResLo, m.ResHi, m.SumExt = 0, 0, 0
	m.DbgCtl, m.DbgBrk, m.DbgHits, m.DbgSteps = 0, 0, 0, 0
	m.DbgScratch = [4]uint16{}
	m.Out = nil
	m.Halted = false
	m.Insts, m.Cycles = 0, 0
	m.Regs[msp430.PC] = m.readWordRaw(msp430.ResetVec)
}

// SetIRQ drives external interrupt line i; a rising edge latches the
// corresponding IFG bit.
func (m *Machine) SetIRQ(i int, level bool) {
	if level && !m.irqLine[i] {
		m.IFG |= 1 << uint(i)
	}
	m.irqLine[i] = level
}

func (m *Machine) readWordRaw(addr uint16) uint16 {
	addr &^= 1
	return uint16(m.Mem[addr]) | uint16(m.Mem[addr+1])<<8
}

func (m *Machine) writeWordRaw(addr, v uint16) {
	addr &^= 1
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
}

// perRead returns the value of a peripheral/SFR word register.
func (m *Machine) perRead(addr uint16) uint16 {
	switch addr &^ 1 {
	case msp430.IE1:
		return m.IE
	case msp430.IFG:
		return m.IFG
	case msp430.P1IN:
		return m.P1In
	case msp430.P1OUT:
		return m.P1Out
	case msp430.P1DIR:
		return m.P1Dir
	case msp430.WDTCTL:
		return m.WDTCtl
	case msp430.BCSCTL:
		return m.BCSCtl
	case msp430.MPY:
		return m.MpyOp1
	case msp430.MPYS:
		return m.MpyOp1
	case msp430.MAC:
		return m.MpyOp1
	case msp430.OP2:
		return m.MpyOp2
	case msp430.RESLO:
		return m.ResLo
	case msp430.RESHI:
		return m.ResHi
	case msp430.SUMEXT:
		return m.SumExt
	case msp430.DBGCTL:
		return m.DbgCtl
	case msp430.DBGDATA:
		return m.DbgBrk
	case msp430.DBGCTL + 4:
		return m.DbgHits
	case msp430.DBGCTL + 6:
		return m.DbgSteps
	case msp430.DBGCTL + 8, msp430.DBGCTL + 10, msp430.DBGCTL + 12, msp430.DBGCTL + 14:
		return m.DbgScratch[(addr&^1-msp430.DBGCTL-8)/2]
	}
	return 0
}

// perWrite stores to a peripheral register with byte-lane enables.
func (m *Machine) perWrite(addr, v uint16, lo, hi bool) {
	merge := func(old uint16) uint16 {
		nv := old
		if lo {
			nv = nv&0xFF00 | v&0x00FF
		}
		if hi {
			nv = nv&0x00FF | v&0xFF00
		}
		return nv
	}
	switch addr &^ 1 {
	case msp430.IE1:
		m.IE = merge(m.IE)
	case msp430.IFG:
		m.IFG = merge(m.IFG)
	case msp430.P1OUT:
		m.P1Out = merge(m.P1Out)
	case msp430.P1DIR:
		m.P1Dir = merge(m.P1Dir)
	case msp430.WDTCTL:
		nv := merge(m.WDTCtl)
		// Writes must carry the 0x5A password in the high byte.
		if nv>>8 == 0x5A {
			m.WDTCtl = nv & 0x00FF
		}
	case msp430.BCSCTL:
		m.BCSCtl = merge(m.BCSCtl)
	case msp430.MPY:
		m.MpyOp1 = merge(m.MpyOp1)
		m.MpyMode = MpyUnsigned
	case msp430.MPYS:
		m.MpyOp1 = merge(m.MpyOp1)
		m.MpyMode = MpySigned
	case msp430.MAC:
		m.MpyOp1 = merge(m.MpyOp1)
		m.MpyMode = MpyAccumulate
	case msp430.OP2:
		m.MpyOp2 = merge(m.MpyOp2)
		m.multiply()
	case msp430.RESLO:
		m.ResLo = merge(m.ResLo)
	case msp430.RESHI:
		m.ResHi = merge(m.ResHi)
	case msp430.OUTPORT:
		m.Out = append(m.Out, merge(0))
	case msp430.DBGCTL:
		m.DbgCtl = merge(m.DbgCtl)
	case msp430.DBGDATA:
		m.DbgBrk = merge(m.DbgBrk)
	case msp430.DBGCTL + 8, msp430.DBGCTL + 10, msp430.DBGCTL + 12, msp430.DBGCTL + 14:
		i := (addr&^1 - msp430.DBGCTL - 8) / 2
		m.DbgScratch[i] = merge(m.DbgScratch[i])
	}
}

// multiply executes the hardware multiplier on OP2 write, mirroring the
// MSP430 register semantics.
func (m *Machine) multiply() {
	switch m.MpyMode {
	case MpyUnsigned:
		p := uint32(m.MpyOp1) * uint32(m.MpyOp2)
		m.ResLo, m.ResHi = uint16(p), uint16(p>>16)
		m.SumExt = 0
	case MpySigned:
		p := int32(int16(m.MpyOp1)) * int32(int16(m.MpyOp2))
		m.ResLo, m.ResHi = uint16(p), uint16(uint32(p)>>16)
		if p < 0 {
			m.SumExt = 0xFFFF
		} else {
			m.SumExt = 0
		}
	case MpyAccumulate:
		p := uint32(m.MpyOp1) * uint32(m.MpyOp2)
		old := uint32(m.ResHi)<<16 | uint32(m.ResLo)
		sum := uint64(old) + uint64(p)
		m.ResLo, m.ResHi = uint16(sum), uint16(sum>>16)
		if sum > 0xFFFFFFFF {
			m.SumExt = 1
		} else {
			m.SumExt = 0
		}
	}
}

// ReadWord performs a data-space word read with peripheral routing.
func (m *Machine) ReadWord(addr uint16) uint16 {
	addr &^= 1
	if addr <= msp430.PerEnd {
		return m.perRead(addr)
	}
	return m.readWordRaw(addr)
}

// LoadByte performs a data-space byte read.
func (m *Machine) LoadByte(addr uint16) uint8 {
	w := m.ReadWord(addr)
	if addr&1 == 1 {
		return uint8(w >> 8)
	}
	return uint8(w)
}

// WriteWord performs a data-space word write (ROM writes are ignored,
// like a mask ROM).
func (m *Machine) WriteWord(addr, v uint16) {
	addr &^= 1
	switch {
	case addr <= msp430.PerEnd:
		m.perWrite(addr, v, true, true)
	case msp430.InRAM(addr):
		m.writeWordRaw(addr, v)
	}
}

// StoreByte performs a data-space byte write.
func (m *Machine) StoreByte(addr uint16, v uint8) {
	w := addr &^ 1
	var word uint16
	lo := addr&1 == 0
	if lo {
		word = uint16(v)
	} else {
		word = uint16(v) << 8
	}
	switch {
	case w <= msp430.PerEnd:
		m.perWrite(w, word, lo, !lo)
	case msp430.InRAM(w):
		if lo {
			m.Mem[w] = v
		} else {
			m.Mem[w+1] = v
		}
	}
}

func (m *Machine) flags() (c, z, n, v bool) {
	sr := m.Regs[msp430.SR]
	return sr&msp430.FlagC != 0, sr&msp430.FlagZ != 0, sr&msp430.FlagN != 0, sr&msp430.FlagV != 0
}

func (m *Machine) setFlags(c, z, n, v bool) {
	sr := m.Regs[msp430.SR] &^ (msp430.FlagC | msp430.FlagZ | msp430.FlagN | msp430.FlagV)
	if c {
		sr |= msp430.FlagC
	}
	if z {
		sr |= msp430.FlagZ
	}
	if n {
		sr |= msp430.FlagN
	}
	if v {
		sr |= msp430.FlagV
	}
	m.Regs[msp430.SR] = sr
}

// Err types surfaced by Step.
var (
	// ErrHalted indicates the machine already reached the termination
	// convention (self-jump with GIE clear and nothing pending).
	ErrHalted = fmt.Errorf("machine halted")
)

// Fetch decodes the instruction at the current PC without executing it.
func (m *Machine) Fetch() (msp430.Inst, int, error) {
	pc := m.Regs[msp430.PC]
	return msp430.Decode(func(i int) uint16 { return m.readWordRaw(pc + uint16(2*i)) })
}

// pending returns the highest-priority enabled pending interrupt, or -1.
func (m *Machine) pending() int {
	if m.Regs[msp430.SR]&msp430.FlagGIE == 0 {
		return -1
	}
	active := m.IE & m.IFG
	for i := msp430.NumIRQVec - 1; i >= 0; i-- {
		if active>>uint(i)&1 == 1 {
			return i
		}
	}
	return -1
}

// Step executes one instruction (or takes one interrupt). It returns
// ErrHalted once the program has terminated.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	if irq := m.pending(); irq >= 0 {
		m.enterIRQ(irq)
		return nil
	}
	pcBefore := m.Regs[msp430.PC]
	in, nWords, err := m.Fetch()
	if err != nil {
		return fmt.Errorf("at pc=%#04x: %w", pcBefore, err)
	}
	m.debugHooks(pcBefore)
	// PC points past the whole instruction before operands resolve.
	// The assembler never emits PC-relative operands (labels lower to
	// absolute mode), so this convention is unobservable to programs.
	m.Regs[msp430.PC] += uint16(2 * nWords)
	if err := m.exec(in); err != nil {
		return fmt.Errorf("at pc=%#04x (%v): %w", pcBefore, in, err)
	}
	m.Insts++
	m.Cycles += uint64(cycleEstimate(in))
	m.tickPeripherals(cycleEstimate(in))
	// Termination: unconditional self-jump with no enabled interrupt
	// that could ever fire.
	if in.Op == msp430.JMP && in.Offset == -1 && m.pending() < 0 {
		if m.Regs[msp430.SR]&msp430.FlagGIE == 0 || m.IE == 0 {
			m.Halted = true
		}
	}
	return nil
}

// debugHooks updates the debug unit's PC-match and step counters.
func (m *Machine) debugHooks(pc uint16) {
	if m.DbgCtl&1 == 0 {
		return
	}
	m.DbgSteps++
	if m.DbgCtl&2 != 0 && pc == m.DbgBrk {
		m.DbgHits++
	}
}

// tickPeripherals advances free-running peripheral counters.
func (m *Machine) tickPeripherals(cycles int) {
	if m.WDTCtl&0x80 == 0 { // WDTHOLD clear: watchdog counts
		m.WDTCount += uint32(cycles)
	}
}

// enterIRQ pushes PC and SR, clears SR (disabling GIE) and vectors.
func (m *Machine) enterIRQ(i int) {
	m.push(m.Regs[msp430.PC])
	m.push(m.Regs[msp430.SR])
	m.Regs[msp430.SR] = 0
	m.IFG &^= 1 << uint(i)
	m.Regs[msp430.PC] = m.readWordRaw(msp430.IVTStart + uint16(2*i))
	// The gate-level core enters interrupts in four cycles: the fetch
	// cycle that decides to take, then push PC, push SR, vector fetch.
	m.Cycles += 4
	m.tickPeripherals(4)
}

func (m *Machine) push(v uint16) {
	m.Regs[msp430.SP] -= 2
	m.WriteWord(m.Regs[msp430.SP], v)
}

func (m *Machine) pop() uint16 {
	v := m.ReadWord(m.Regs[msp430.SP])
	m.Regs[msp430.SP] += 2
	return v
}

// readOperand resolves a source operand, applying autoincrement.
// It returns the value (byte ops return the low 8 bits populated).
func (m *Machine) readOperand(o msp430.Operand, byteOp bool) uint16 {
	load := func(addr uint16) uint16 {
		if byteOp {
			return uint16(m.LoadByte(addr))
		}
		return m.ReadWord(addr)
	}
	switch o.Mode {
	case msp430.ModeReg:
		v := m.Regs[o.Reg]
		if byteOp {
			v &= 0xFF
		}
		return v
	case msp430.ModeImmediate:
		v := o.Index
		if byteOp {
			v &= 0xFF
		}
		return v
	case msp430.ModeIndexed, msp430.ModeSymbolic:
		return load(m.Regs[o.Reg] + o.Index)
	case msp430.ModeAbsolute:
		return load(o.Index)
	case msp430.ModeIndirect:
		return load(m.Regs[o.Reg])
	case msp430.ModeIndirectInc:
		addr := m.Regs[o.Reg]
		inc := uint16(2)
		if byteOp && o.Reg != msp430.PC && o.Reg != msp430.SP {
			inc = 1
		}
		m.Regs[o.Reg] += inc
		return load(addr)
	}
	panic("isasim: bad operand mode") // panic-ok: decode already rejected every other mode
}

// dstAddr resolves the address of a memory destination.
func (m *Machine) dstAddr(o msp430.Operand) uint16 {
	switch o.Mode {
	case msp430.ModeIndexed, msp430.ModeSymbolic:
		return m.Regs[o.Reg] + o.Index
	case msp430.ModeAbsolute:
		return o.Index
	}
	panic("isasim: dstAddr of register operand") // panic-ok: callers check the mode before asking for an address
}

// writeReg stores an ALU result into a register with byte semantics
// (byte writes clear the high byte). Writes to CG are discarded, and the
// status register only implements its 9 architectural bits.
func (m *Machine) writeReg(r uint8, v uint16, byteOp bool) {
	if r == msp430.CG {
		return
	}
	if byteOp {
		v &= 0xFF
	}
	if r == msp430.SR {
		v &= 0x01FF
	}
	m.Regs[r] = v
}

func (m *Machine) exec(in msp430.Inst) error {
	switch {
	case in.Op.IsJump():
		c, z, n, v := m.flags()
		take := false
		switch in.Op {
		case msp430.JNE:
			take = !z
		case msp430.JEQ:
			take = z
		case msp430.JNC:
			take = !c
		case msp430.JC:
			take = c
		case msp430.JN:
			take = n
		case msp430.JGE:
			take = n == v
		case msp430.JL:
			take = n != v
		case msp430.JMP:
			take = true
		}
		if take {
			m.Regs[msp430.PC] += uint16(2 * in.Offset)
		}
		return nil

	case in.Op.IsFormatII():
		return m.execFormatII(in)

	default:
		return m.execFormatI(in)
	}
}

func (m *Machine) execFormatI(in msp430.Inst) error {
	src := m.readOperand(in.Src, in.Byte)

	dstIsReg := in.Dst.Mode == msp430.ModeReg
	var daddr uint16
	var dst uint16
	if dstIsReg {
		dst = m.Regs[in.Dst.Reg]
		if in.Byte {
			dst &= 0xFF
		}
	} else {
		daddr = m.dstAddr(in.Dst)
		// MOV does not read the destination.
		if in.Op != msp430.MOV {
			if in.Byte {
				dst = uint16(m.LoadByte(daddr))
			} else {
				dst = m.ReadWord(daddr)
			}
		}
	}

	cIn, _, _, _ := m.flags()
	res, wr := m.alu(in.Op, src, dst, cIn, in.Byte)

	if wr {
		if dstIsReg {
			m.writeReg(in.Dst.Reg, res, in.Byte)
		} else if in.Byte {
			m.StoreByte(daddr, uint8(res))
		} else {
			m.WriteWord(daddr, res)
		}
	}
	return nil
}

// alu computes a format I operation, updates flags, and reports whether
// the result is written back.
func (m *Machine) alu(op msp430.Op, src, dst uint16, cIn, byteOp bool) (res uint16, write bool) {
	width := uint(16)
	if byteOp {
		width = 8
	}
	msb := uint16(1) << (width - 1)
	mask := uint16(1)<<width - 1
	if !byteOp {
		mask = 0xFFFF
	}

	addLike := func(a, b uint16, carry bool) uint16 {
		sum := uint32(a&mask) + uint32(b&mask)
		if carry {
			sum++
		}
		r := uint16(sum) & mask
		c := sum > uint32(mask)
		n := r&msb != 0
		z := r == 0
		v := (a&msb == b&msb) && (r&msb != a&msb)
		m.setFlags(c, z, n, v)
		return r
	}
	logicFlags := func(r uint16) uint16 {
		r &= mask
		m.setFlags(r != 0, r == 0, r&msb != 0, false)
		return r
	}

	switch op {
	case msp430.MOV:
		return src & mask, true
	case msp430.ADD:
		return addLike(dst, src, false), true
	case msp430.ADDC:
		return addLike(dst, src, cIn), true
	case msp430.SUB:
		return addLike(dst, ^src&mask, true), true
	case msp430.SUBC:
		return addLike(dst, ^src&mask, cIn), true
	case msp430.CMP:
		addLike(dst, ^src&mask, true)
		return 0, false
	case msp430.DADD:
		return m.dadd(src, dst, cIn, byteOp), true
	case msp430.BIT:
		logicFlags(src & dst)
		return 0, false
	case msp430.BIC:
		return (^src & dst) & mask, true
	case msp430.BIS:
		return (src | dst) & mask, true
	case msp430.XOR:
		r := (src ^ dst) & mask
		vf := src&msb != 0 && dst&msb != 0
		m.setFlags(r != 0, r == 0, r&msb != 0, vf)
		return r, true
	case msp430.AND:
		return logicFlags(src & dst), true
	}
	panic("isasim: alu on non-format-I op") // panic-ok: decode routes only format-I ops here
}

// dadd is the BCD add-with-carry, digit-serial like the hardware.
func (m *Machine) dadd(src, dst uint16, cIn, byteOp bool) uint16 {
	digits := 4
	if byteOp {
		digits = 2
	}
	carry := uint16(0)
	if cIn {
		carry = 1
	}
	var res uint16
	for d := 0; d < digits; d++ {
		sh := uint(4 * d)
		sum := src>>sh&0xF + dst>>sh&0xF + carry
		if sum >= 10 {
			sum -= 10
			carry = 1
		} else {
			carry = 0
		}
		res |= sum << sh
	}
	msb := uint16(0x8000)
	if byteOp {
		msb = 0x80
	}
	m.setFlags(carry == 1, res == 0, res&msb != 0, false)
	return res
}

func (m *Machine) execFormatII(in msp430.Inst) error {
	if in.Op == msp430.RETI {
		m.Regs[msp430.SR] = m.pop() & 0x01FF
		m.Regs[msp430.PC] = m.pop()
		return nil
	}

	byteOp := in.Byte
	width := uint(16)
	if byteOp {
		width = 8
	}
	msb := uint16(1) << (width - 1)
	mask := uint16(1)<<width - 1

	// PUSH and CALL only read; the others are read-modify-write on the
	// operand location.
	opnd := in.Src
	v := m.readOperand(opnd, byteOp)

	writeBack := func(r uint16) {
		switch opnd.Mode {
		case msp430.ModeReg:
			m.writeReg(opnd.Reg, r, byteOp)
		case msp430.ModeIndexed, msp430.ModeSymbolic, msp430.ModeAbsolute:
			addr := m.dstAddr(opnd)
			if byteOp {
				m.StoreByte(addr, uint8(r))
			} else {
				m.WriteWord(addr, r)
			}
		case msp430.ModeIndirect, msp430.ModeIndirectInc:
			// The operand address for @Rn+ was already consumed; the
			// write targets the pre-increment address.
			addr := m.Regs[opnd.Reg]
			if opnd.Mode == msp430.ModeIndirectInc {
				inc := uint16(2)
				if byteOp && opnd.Reg != msp430.PC && opnd.Reg != msp430.SP {
					inc = 1
				}
				addr -= inc
			}
			if byteOp {
				m.StoreByte(addr, uint8(r))
			} else {
				m.WriteWord(addr, r)
			}
		case msp430.ModeImmediate:
			// Result of RRA #N etc. is discarded (not meaningful).
		}
	}

	c, _, _, _ := m.flags()
	switch in.Op {
	case msp430.RRC:
		r := v >> 1
		if c {
			r |= msb
		}
		m.setFlags(v&1 != 0, r&mask == 0, r&msb != 0, false)
		writeBack(r & mask)
	case msp430.RRA:
		r := v>>1 | v&msb
		m.setFlags(v&1 != 0, r&mask == 0, r&msb != 0, false)
		writeBack(r & mask)
	case msp430.SWPB:
		writeBack(v>>8 | v<<8)
	case msp430.SXT:
		r := v & 0xFF
		if r&0x80 != 0 {
			r |= 0xFF00
		}
		m.setFlags(r != 0, r == 0, r&0x8000 != 0, false)
		writeBack(r)
	case msp430.PUSH:
		m.push(v)
	case msp430.CALL:
		m.push(m.Regs[msp430.PC])
		m.Regs[msp430.PC] = v
	default:
		return fmt.Errorf("unhandled format II op %v", in.Op)
	}
	return nil
}

// cycleEstimate gives the exact per-instruction cycle count of the
// multicycle gate-level core's state sequence; co-simulation asserts the
// two models agree.
func cycleEstimate(in msp430.Inst) int {
	srcCost := func(o msp430.Operand) int {
		switch o.Mode {
		case msp430.ModeReg:
			return 0
		case msp430.ModeImmediate:
			if o.NoCG {
				return 1
			}
			switch o.Index {
			case 0, 1, 2, 4, 8, 0xFFFF:
				return 0 // constant generator
			}
			return 1 // SRCEXT
		case msp430.ModeIndirect, msp430.ModeIndirectInc:
			return 1 // SRCRD
		default:
			return 2 // SRCEXT + SRCRD
		}
	}
	memOperand := func(o msp430.Operand) bool {
		switch o.Mode {
		case msp430.ModeIndexed, msp430.ModeSymbolic, msp430.ModeAbsolute,
			msp430.ModeIndirect, msp430.ModeIndirectInc:
			return true
		}
		return false
	}
	switch {
	case in.Op.IsJump():
		return 2 // FETCH + EXEC
	case in.Op == msp430.RETI:
		return 3 // FETCH + RETI1 + RETI2
	case in.Op == msp430.PUSH:
		return 2 + srcCost(in.Src) // FETCH + operand + PUSH1
	case in.Op == msp430.CALL:
		return 3 + srcCost(in.Src) // FETCH + operand + CALL1 + CALL2
	case in.Op.IsFormatII():
		c := 2 + srcCost(in.Src) // FETCH + operand + EXEC
		if memOperand(in.Src) {
			c++ // DSTWR write-back
		}
		return c
	default:
		c := 2 + srcCost(in.Src) // FETCH + src operand + EXEC
		if in.Dst.Mode != msp430.ModeReg {
			c++ // DSTEXT
			if in.Op != msp430.MOV {
				c++ // DSTRD (MOV does not read its destination)
			}
			if in.Op != msp430.CMP && in.Op != msp430.BIT {
				c++ // DSTWR
			}
		}
		return c
	}
}

// Run executes up to maxInsts instructions or until halt/error.
func (m *Machine) Run(maxInsts uint64) error {
	for i := uint64(0); i < maxInsts; i++ {
		if err := m.Step(); err != nil {
			if err == ErrHalted {
				return nil
			}
			return err
		}
		if m.Halted {
			return nil
		}
	}
	return fmt.Errorf("did not halt within %d instructions (pc=%#04x)", maxInsts, m.Regs[msp430.PC])
}

// LoadRAMWords copies words into RAM starting at addr (testbench inputs).
func (m *Machine) LoadRAMWords(addr uint16, words []uint16) {
	for i, w := range words {
		m.writeWordRaw(addr+uint16(2*i), w)
	}
}

// RAMWord reads a RAM word directly (testbench result checking).
func (m *Machine) RAMWord(addr uint16) uint16 { return m.readWordRaw(addr) }
