package isasim

import (
	"testing"

	"bespoke/internal/asm"
	"bespoke/internal/msp430"
)

// run assembles src, runs to halt, and returns the machine.
func run(t *testing.T, src string, maxInsts uint64) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p.Bytes, p.Origin)
	if err := m.Run(maxInsts); err != nil {
		t.Fatal(err)
	}
	return m
}

const prologue = `
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #STACKTOP, sp
`

const epilogue = `
halt:   jmp $
        .org 0xFFFE
        .word start
`

func TestArithmeticAndFlags(t *testing.T) {
	m := run(t, prologue+`
        mov #5, r4
        add #7, r4          ; r4 = 12
        sub #2, r4          ; r4 = 10
        mov #0x8000, r5
        add #0x8000, r5     ; carry + overflow, r5 = 0
        jc carryok
        mov #0xBAD, &OUTPORT
carryok:
        jeq zok
        mov #0xBAD2, &OUTPORT
zok:    mov r4, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 10 {
		t.Fatalf("Out = %v, want [10]", m.Out)
	}
}

func TestByteOps(t *testing.T) {
	m := run(t, prologue+`
        mov #0x1234, r4
        mov.b r4, r5        ; r5 = 0x34 (byte read clears high)
        add.b #0xF0, r5     ; 0x34+0xF0 = 0x124 -> 0x24, carry set
        jc c1
        mov #0xBAD, &OUTPORT
c1:     mov r5, &OUTPORT
        mov #0x880, r6
        mov #0xAABB, 0(r6)
        mov.b #0xCC, 1(r6)  ; high byte of word at 0x204
        mov @r6, &OUTPORT   ; 0xCCBB
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 0x24 || m.Out[1] != 0xCCBB {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestSubCmpFlags(t *testing.T) {
	m := run(t, prologue+`
        mov #5, r4
        cmp #5, r4
        jeq eq
        mov #1, &OUTPORT
eq:     cmp #6, r4          ; 5-6 borrows: C clear
        jnc nc
        mov #2, &OUTPORT
nc:     cmp #-1, r4         ; signed: 5 > -1 -> JGE taken
        jge ge
        mov #3, &OUTPORT
ge:     mov #0x7FFF, r5
        add #1, r5          ; overflow
        jn neg
        mov #4, &OUTPORT
neg:    mov #0xAA, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 0xAA {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestLogicOps(t *testing.T) {
	m := run(t, prologue+`
        mov #0xF0F0, r4
        and #0xFF00, r4     ; 0xF000
        bis #0x000F, r4     ; 0xF00F
        bic #0x8000, r4     ; 0x700F
        xor #0x00FF, r4     ; 0x70F0
        mov r4, &OUTPORT
        bit #0x0F00, r4
        jeq zok
        mov #0xBAD, &OUTPORT
zok:    mov #1, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 0x70F0 || m.Out[1] != 1 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestShiftsAndSwap(t *testing.T) {
	m := run(t, prologue+`
        mov #0x8003, r4
        rra r4              ; 0xC001, C=1
        mov r4, &OUTPORT
        setc
        mov #0x0002, r5
        rrc r5              ; C in -> 0x8001, C=0
        mov r5, &OUTPORT
        swpb r5             ; 0x0180
        mov r5, &OUTPORT
        mov #0x0080, r6
        sxt r6              ; 0xFF80
        mov r6, &OUTPORT
`+epilogue, 1e5)
	want := []uint16{0xC001, 0x8001, 0x0180, 0xFF80}
	if len(m.Out) != len(want) {
		t.Fatalf("Out = %#v", m.Out)
	}
	for i, w := range want {
		if m.Out[i] != w {
			t.Errorf("Out[%d] = %#x, want %#x", i, m.Out[i], w)
		}
	}
}

func TestCallRetStack(t *testing.T) {
	m := run(t, prologue+`
        mov #3, r12
        call #double
        mov r12, &OUTPORT   ; 6
        call #double
        mov r12, &OUTPORT   ; 12
        jmp halt
double: add r12, r12
        ret
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 6 || m.Out[1] != 12 {
		t.Fatalf("Out = %#v", m.Out)
	}
	if m.Regs[msp430.SP] != msp430.RAMEnd+1 {
		t.Errorf("SP leaked: %#x", m.Regs[msp430.SP])
	}
}

func TestPushPop(t *testing.T) {
	m := run(t, prologue+`
        mov #0x1111, r4
        mov #0x2222, r5
        push r4
        push r5
        pop r4              ; r4 = 0x2222
        pop r5              ; r5 = 0x1111
        mov r4, &OUTPORT
        mov r5, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 0x2222 || m.Out[1] != 0x1111 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestAutoIncrementLoop(t *testing.T) {
	m := run(t, prologue+`
        mov #tab, r4
        clr r5
loop:   add @r4+, r5
        cmp #tabend, r4
        jne loop
        mov r5, &OUTPORT
        jmp halt
tab:    .word 1, 2, 3, 4, 5
tabend:
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 15 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestIndexedMemory(t *testing.T) {
	m := run(t, prologue+`
        mov #0x900, r4
        mov #7, 0(r4)
        mov #9, 2(r4)
        mov 0(r4), r5
        add 2(r4), r5
        mov r5, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 16 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestHardwareMultiplier(t *testing.T) {
	m := run(t, prologue+`
        mov #1234, &MPY
        mov #567, &OP2
        mov &RESLO, &OUTPORT
        mov &RESHI, &OUTPORT
        mov #-3, &MPYS      ; signed: -3 * 9 = -27
        mov #9, &OP2
        mov &RESLO, &OUTPORT
        mov &RESHI, &OUTPORT
        mov &SUMEXT, &OUTPORT
`+epilogue, 1e5)
	p := uint32(1234) * 567
	neg27 := int16(-27)
	want := []uint16{uint16(p), uint16(p >> 16), uint16(neg27), 0xFFFF, 0xFFFF}
	if len(m.Out) != len(want) {
		t.Fatalf("Out = %#v", m.Out)
	}
	for i, w := range want {
		if m.Out[i] != w {
			t.Errorf("Out[%d] = %#x, want %#x", i, m.Out[i], w)
		}
	}
}

func TestMultiplyAccumulate(t *testing.T) {
	m := run(t, prologue+`
        mov #100, &MPY
        mov #100, &OP2      ; res = 10000
        mov #50, &MAC
        mov #2, &OP2        ; res += 100 -> 10100
        mov &RESLO, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 10100 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestDADD(t *testing.T) {
	m := run(t, prologue+`
        clrc
        mov #0x0199, r4
        dadd #0x0001, r4    ; BCD: 199 + 1 = 200
        mov r4, &OUTPORT
        setc
        mov #0x0999, r5
        dadd #0x0000, r5    ; BCD: 999 + 0 + carry = 1000
        mov r5, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 0x0200 || m.Out[1] != 0x1000 {
		t.Fatalf("Out = %#v (want BCD 0x0200, 0x1000)", m.Out)
	}
}

func TestInterrupt(t *testing.T) {
	p := asm.MustAssemble(prologue + `
        mov #1, &IE1        ; enable irq line 0
        eint
        clr r4
wait:   cmp #1, r4
        jne wait
        dint
        mov #0xD0, &OUTPORT
        jmp halt
isr:    mov #1, r4
        mov #0xCC, &OUTPORT
        reti
` + epilogue + `
        .org 0xFFF6
        .word isr
`)
	m := New(p.Bytes, p.Origin)
	// Let the main loop spin a little, then pulse the line.
	for i := 0; i < 10; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.SetIRQ(0, true)
	m.SetIRQ(0, false)
	if err := m.Run(1e5); err != nil {
		t.Fatal(err)
	}
	if len(m.Out) != 2 || m.Out[0] != 0xCC || m.Out[1] != 0xD0 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestWatchdogPassword(t *testing.T) {
	m := run(t, `
        .org 0xF000
start:  mov #0x1280, &WDTCTL   ; wrong password: ignored
        mov &WDTCTL, &OUTPORT
        mov #0x5A80, &WDTCTL   ; correct
        mov &WDTCTL, &OUTPORT
`+epilogue, 1e5)
	if len(m.Out) != 2 || m.Out[0] != 0 || m.Out[1] != 0x80 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestDebugUnit(t *testing.T) {
	m := run(t, prologue+`
        mov #target, &DBGDATA
        mov #3, &DBGCTL     ; enable + breakpoint
        clr r4
loop:
target: inc r4
        cmp #4, r4
        jne loop
        mov &DBGHITS, &OUTPORT
        mov &DBGSTEPS, &OUTPORT
        clr &DBGCTL
`+epilogue, 1e5)
	if len(m.Out) != 2 {
		t.Fatalf("Out = %#v", m.Out)
	}
	if m.Out[0] != 4 {
		t.Errorf("breakpoint hits = %d, want 4", m.Out[0])
	}
	if m.Out[1] < 10 {
		t.Errorf("step counter = %d, want >= 10", m.Out[1])
	}
}

func TestP1Port(t *testing.T) {
	p := asm.MustAssemble(prologue + `
        mov &P1IN, r4
        add #1, r4
        mov r4, &P1OUT
        mov &P1OUT, &OUTPORT
` + epilogue)
	m := New(p.Bytes, p.Origin)
	m.P1In = 0x41
	if err := m.Run(1e5); err != nil {
		t.Fatal(err)
	}
	if len(m.Out) != 1 || m.Out[0] != 0x42 {
		t.Fatalf("Out = %#v", m.Out)
	}
	if m.P1Out != 0x42 {
		t.Errorf("P1Out = %#x", m.P1Out)
	}
}

func TestMovAutoIncSameReg(t *testing.T) {
	// mov @r4+, r4: increment happens, then the loaded value wins.
	m := run(t, prologue+`
        mov #tab, r4
        mov @r4+, r4
        mov r4, &OUTPORT
        jmp halt
tab:    .word 0x7777
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 0x7777 {
		t.Fatalf("Out = %#v", m.Out)
	}
}

func TestROMWriteIgnored(t *testing.T) {
	m := run(t, prologue+`
        mov #0xDEAD, &0xF800   ; ROM: ignored
        mov &0xF800, &OUTPORT  ; reads whatever ROM holds (0)
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] == 0xDEAD {
		t.Fatalf("ROM write stuck: %#v", m.Out)
	}
}

func TestHaltDetection(t *testing.T) {
	m := run(t, prologue+epilogue, 1e5)
	if !m.Halted {
		t.Fatal("not halted")
	}
	if err := m.Step(); err != ErrHalted {
		t.Fatalf("Step after halt = %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	p := asm.MustAssemble(`
        .org 0xF000
start:  eint                 ; GIE set: self-jump is not a halt...
        mov #1, &IE1         ; ...because irq0 could still fire
spin:   jmp spin
        .org 0xFFFE
        .word start
`)
	m := New(p.Bytes, p.Origin)
	if err := m.Run(1000); err == nil {
		t.Fatal("expected timeout error for non-halting program")
	}
}

func TestByteAutoIncrementBy1(t *testing.T) {
	m := run(t, prologue+`
        mov #tab, r4
        clr r5
        mov #4, r6
bl:     add.b @r4+, r5
        dec r6
        jne bl
        mov r5, &OUTPORT
        jmp halt
tab:    .byte 1, 2, 3, 4
`+epilogue, 1e5)
	if len(m.Out) != 1 || m.Out[0] != 10 {
		t.Fatalf("Out = %#v", m.Out)
	}
}
