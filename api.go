// Package bespoke is a from-scratch Go reproduction of "Bespoke
// Processors for Applications with Ultra-low Area and Power Constraints"
// (Cherupalli, Duwe, Ye, Kumar, Sartori; ISCA 2017), and this file is its
// public API: assemble an MSP430 application, tailor the general purpose
// gate-level microcontroller to it, and inspect the resulting bespoke
// design.
//
//	prog, _ := bespoke.Assemble(source)
//	res, _ := bespoke.Tailor(prog, nil)
//	fmt.Println(res.GateSavings, res.PowerSavings)
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the commands under cmd/ and the programs under examples/
// are thin clients of the same surface.
package bespoke

import (
	"context"
	"io"

	"bespoke/internal/asm"
	"bespoke/internal/core"
	"bespoke/internal/symexec"
)

// Program is an assembled MSP430 binary image plus its metadata
// (symbols, source map, decoded instructions).
type Program = asm.Program

// Workload is a representative concrete stimulus (RAM preload, input
// port and interrupt schedules) used for dynamic power measurement and
// input-based verification.
type Workload = core.Workload

// Result is the outcome of tailoring: baseline and bespoke signoff
// metrics, the analysis statistics, the headline savings, and the still-
// executable bespoke design.
type Result = core.Result

// Options tunes the flow (analysis limits, clock period, cell library).
type Options = core.Options

// FlowError is the structured failure of one pipeline stage. Every error
// returned by the tailoring entry points — including recovered panics
// from malformed inputs — is a *FlowError; its Stage names the pipeline
// stage that failed and Unwrap exposes the cause (context errors, the
// symexec watchdog's *symexec.LimitError, ...).
type FlowError = core.FlowError

// Assemble translates MSP430 assembly (the dialect documented in
// internal/asm) into a Program.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// Tailor produces a bespoke processor for one application: it proves
// which gates the binary can never toggle for any input, cuts them,
// re-synthesizes, places, and signs off timing and power against the
// general purpose baseline. A nil workload measures power on a plain
// run of the program.
//
// Tailor never honors cancellation (it runs under context.Background());
// services that need a bounded, cancellable flow use TailorContext.
func Tailor(prog *Program, w *Workload) (*Result, error) {
	return core.Tailor(context.Background(), prog, w, core.Options{})
}

// TailorContext is Tailor with explicit flow options under a caller
// context. Cancellation and deadlines are honored inside the analysis and
// simulation hot loops (checked every 1024 simulated cycles), so a
// serving layer can bound the wall-clock cost of any request; the
// returned error wraps context.Canceled or context.DeadlineExceeded.
func TailorContext(ctx context.Context, prog *Program, w *Workload, opts Options) (*Result, error) {
	return core.Tailor(ctx, prog, w, opts)
}

// TailorWithOptions is Tailor with explicit flow options.
func TailorWithOptions(prog *Program, w *Workload, opts Options) (*Result, error) {
	return core.Tailor(context.Background(), prog, w, opts)
}

// TailorMulti produces one bespoke processor supporting every given
// application (the union of their exercisable gates, Section 3.5).
func TailorMulti(progs []*Program, ws []*Workload) (*Result, error) {
	return core.TailorMulti(context.Background(), progs, ws, core.Options{})
}

// TailorMultiContext is TailorMulti under a caller context with explicit
// options, with the same cancellation semantics as TailorContext.
func TailorMultiContext(ctx context.Context, progs []*Program, ws []*Workload, opts Options) (*Result, error) {
	return core.TailorMulti(ctx, progs, ws, opts)
}

// SupportsUpdate reports whether the bespoke design tailored to base
// would execute update correctly: every gate the update can exercise
// must be kept (the paper's Section 3.5 in-field update test).
func SupportsUpdate(base []*Program, update *Program) (bool, error) {
	return SupportsUpdateContext(context.Background(), base, update, Options{})
}

// SupportsUpdateContext is SupportsUpdate under a caller context with the
// flow options propagated into both activity analyses (the base union and
// the update), so a tuned MaxCycles or MergeThreshold applies to the whole
// in-field update decision rather than only to the original tailoring.
func SupportsUpdateContext(ctx context.Context, base []*Program, update *Program, opts Options) (bool, error) {
	ba, err := core.UnionAnalysis(ctx, base, opts.Sym)
	if err != nil {
		return false, err
	}
	// The second return (the freshly built core) is intentionally unused:
	// the update decision is a pure set comparison over gate activity, and
	// gate IDs align across builds because elaboration is deterministic —
	// no netlist inspection is needed.
	ua, _, err := symexec.Analyze(ctx, update, opts.Sym)
	if err != nil {
		return false, err
	}
	for g := range ua.Toggled {
		if ua.Toggled[g] && !ba.Toggled[g] {
			return false, nil
		}
	}
	return true, nil
}

// WriteVerilog emits a result's bespoke netlist as structural Verilog.
func WriteVerilog(res *Result, w io.Writer) error {
	return res.BespokeCore.N.WriteVerilog(w, "bespoke_core")
}
