// Package bespoke is a from-scratch Go reproduction of "Bespoke
// Processors for Applications with Ultra-low Area and Power Constraints"
// (Cherupalli, Duwe, Ye, Kumar, Sartori; ISCA 2017), and this file is its
// public API: assemble an MSP430 application, tailor the general purpose
// gate-level microcontroller to it, and inspect the resulting bespoke
// design.
//
//	prog, _ := bespoke.Assemble(source)
//	res, _ := bespoke.Tailor(prog, nil)
//	fmt.Println(res.GateSavings, res.PowerSavings)
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the commands under cmd/ and the programs under examples/
// are thin clients of the same surface.
package bespoke

import (
	"io"

	"bespoke/internal/asm"
	"bespoke/internal/core"
	"bespoke/internal/symexec"
)

// Program is an assembled MSP430 binary image plus its metadata
// (symbols, source map, decoded instructions).
type Program = asm.Program

// Workload is a representative concrete stimulus (RAM preload, input
// port and interrupt schedules) used for dynamic power measurement and
// input-based verification.
type Workload = core.Workload

// Result is the outcome of tailoring: baseline and bespoke signoff
// metrics, the analysis statistics, the headline savings, and the still-
// executable bespoke design.
type Result = core.Result

// Options tunes the flow (analysis limits, clock period, cell library).
type Options = core.Options

// Assemble translates MSP430 assembly (the dialect documented in
// internal/asm) into a Program.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// Tailor produces a bespoke processor for one application: it proves
// which gates the binary can never toggle for any input, cuts them,
// re-synthesizes, places, and signs off timing and power against the
// general purpose baseline. A nil workload measures power on a plain
// run of the program.
func Tailor(prog *Program, w *Workload) (*Result, error) {
	return core.Tailor(prog, w, core.Options{})
}

// TailorWithOptions is Tailor with explicit flow options.
func TailorWithOptions(prog *Program, w *Workload, opts Options) (*Result, error) {
	return core.Tailor(prog, w, opts)
}

// TailorMulti produces one bespoke processor supporting every given
// application (the union of their exercisable gates, Section 3.5).
func TailorMulti(progs []*Program, ws []*Workload) (*Result, error) {
	return core.TailorMulti(progs, ws, core.Options{})
}

// SupportsUpdate reports whether the bespoke design tailored to base
// would execute update correctly: every gate the update can exercise
// must be kept (the paper's Section 3.5 in-field update test).
func SupportsUpdate(base []*Program, update *Program) (bool, error) {
	ba, err := core.UnionAnalysis(base, symexec.Options{})
	if err != nil {
		return false, err
	}
	ua, _, err := symexec.Analyze(update, symexec.Options{})
	if err != nil {
		return false, err
	}
	for g := range ua.Toggled {
		if ua.Toggled[g] && !ba.Toggled[g] {
			return false, nil
		}
	}
	return true, nil
}

// WriteVerilog emits a result's bespoke netlist as structural Verilog.
func WriteVerilog(res *Result, w io.Writer) error {
	return res.BespokeCore.N.WriteVerilog(w, "bespoke_core")
}
