// Command repolint enforces repository conventions that go vet does not
// cover, using only the standard library's go/ast:
//
//   - Exported functions in internal/core, internal/symexec,
//     internal/faultinject, internal/sat and internal/equiv that do
//     long-running work must take a leading context.Context, so every
//     flow entry point and every unbounded solver call stays
//     cancellable. A
//     function counts as long-running when it reaches for
//     context.Background/context.TODO itself or calls — directly or
//     through a method/selector — something named like a same-package
//     function that takes a leading context.
//   - No stray fmt.Print*/print/println debugging in internal/
//     non-test files; diagnostics belong on error values or in the CLIs.
//   - No bare panic( in internal/ non-test files: library code reports
//     failures as errors. A panic is allowed only inside functions named
//     must*/Must* or init, inside a function that installs its own
//     recover boundary, or when annotated with a same-or-previous-line
//     "// panic-ok: <reason>" comment explaining why the invariant is
//     unreachable from exported entry points.
//
// Usage: repolint [root] (default ".", the module root). Exit status is
// 1 when there are issues, 2 on parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	issues, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, is := range issues {
		fmt.Printf("%s:%d: %s\n", is.File, is.Line, is.Msg)
	}
	if len(issues) > 0 {
		fmt.Printf("%d issues\n", len(issues))
		os.Exit(1)
	}
}

// Issue is one convention violation.
type Issue struct {
	File string
	Line int
	Msg  string
}

// ctxPackages are the directories (relative to the root) whose exported
// API must thread context.Context through long-running work.
var ctxPackages = map[string]bool{
	"internal/core":        true,
	"internal/symexec":     true,
	"internal/faultinject": true,
	"internal/sat":         true,
	"internal/equiv":       true,
	"internal/serve":       true,
}

// run lints the tree under root and returns the issues sorted by file
// and line.
func run(root string) ([]Issue, error) {
	files, err := collect(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	parsed := map[string]*ast.File{} // rel path -> file
	byDir := map[string][]string{}   // rel dir -> rel paths
	for _, rel := range files {
		f, err := parser.ParseFile(fset, filepath.Join(root, rel), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed[rel] = f
		dir := filepath.ToSlash(filepath.Dir(rel))
		byDir[dir] = append(byDir[dir], rel)
	}

	var issues []Issue
	for dir, rels := range byDir {
		// The per-package set of functions taking a leading context is
		// what lets a ctx-less exported wrapper be recognized as
		// long-running work.
		ctxFuncs := map[string]bool{}
		for _, rel := range rels {
			for _, d := range parsed[rel].Decls {
				fd, ok := d.(*ast.FuncDecl)
				if ok && hasLeadingCtx(fd) {
					ctxFuncs[fd.Name.Name] = true
				}
			}
		}
		for _, rel := range rels {
			issues = append(issues, lintFile(fset, parsed[rel], rel, ctxPackages[dir], ctxFuncs)...)
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].File != issues[j].File {
			return issues[i].File < issues[j].File
		}
		return issues[i].Line < issues[j].Line
	})
	return issues, nil
}

// collect returns the non-test Go files under root's internal/ tree,
// relative to root.
func collect(root string) ([]string, error) {
	var files []string
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files = append(files, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

func lintFile(fset *token.FileSet, f *ast.File, rel string, ctxPkg bool, ctxFuncs map[string]bool) []Issue {
	var issues []Issue
	at := func(pos token.Pos, format string, args ...any) {
		issues = append(issues, Issue{
			File: rel,
			Line: fset.Position(pos).Line,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	panicOK := panicOKLines(fset, f)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if ctxPkg && fd.Name.IsExported() && !hasLeadingCtx(fd) && !exemptName(fd.Name.Name) {
			if reason := longRunning(fd, ctxFuncs); reason != "" {
				at(fd.Pos(), "exported %s does long-running work (%s) without a leading context.Context parameter",
					fd.Name.Name, reason)
			}
		}
		mayPanic := panicBoundary(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if pkgIdent(fun.X) == "fmt" && strings.HasPrefix(fun.Sel.Name, "Print") {
					at(call.Pos(), "stray fmt.%s in internal/ (return an error or report via the CLI instead)", fun.Sel.Name)
				}
			case *ast.Ident:
				if fun.Name == "print" || fun.Name == "println" {
					at(call.Pos(), "stray builtin %s in internal/", fun.Name)
				}
				if fun.Name == "panic" && !mayPanic {
					line := fset.Position(call.Pos()).Line
					if !panicOK[line] && !panicOK[line-1] {
						at(call.Pos(), "bare panic in %s (return an error, rename the function must*, or annotate the line with // panic-ok: <reason>)",
							fd.Name.Name)
					}
				}
			}
			return true
		})
	}
	return issues
}

// panicOKLines collects the lines bearing a "// panic-ok: <reason>"
// annotation with a non-empty reason; a panic on the same or the next
// line is exempt from the bare-panic rule.
func panicOKLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "panic-ok:")
			if ok && strings.TrimSpace(rest) != "" {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// panicBoundary reports whether fd is allowed to panic wholesale: it is
// a must*/Must* helper or init (panicking is the documented contract),
// or it installs a recover boundary that contains its own panics.
func panicBoundary(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if name == "init" || strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return true
	})
	return found
}

// exemptName lists interface-mandated methods whose signatures cannot
// take a context.
func exemptName(name string) bool {
	switch name {
	case "Error", "String", "Unwrap", "ServeHTTP":
		return true
	}
	return false
}

// hasLeadingCtx reports whether fd's first parameter is context.Context.
func hasLeadingCtx(fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	return ok && pkgIdent(sel.X) == "context" && sel.Sel.Name == "Context"
}

// longRunning reports why fd counts as long-running work: it
// manufactures its own context, or it calls — as a bare identifier or
// through a method/selector — something named like a same-package
// function that takes a leading context (necessarily passing it a
// made-up one, since fd has none to forward). An empty string means it
// does not.
func longRunning(fd *ast.FuncDecl, ctxFuncs map[string]bool) string {
	reason := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			switch {
			case pkgIdent(fun.X) == "context" && (fun.Sel.Name == "Background" || fun.Sel.Name == "TODO"):
				reason = "calls context." + fun.Sel.Name
			case ctxFuncs[fun.Sel.Name] && fun.Sel.Name != fd.Name.Name:
				reason = "calls " + fun.Sel.Name + ", which takes a context"
			}
		case *ast.Ident:
			if ctxFuncs[fun.Name] && fun.Name != fd.Name.Name {
				reason = "calls " + fun.Name + ", which takes a context"
			}
		}
		return true
	})
	return reason
}

// pkgIdent returns the identifier name of e when it is a bare package
// qualifier, else "".
func pkgIdent(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
