package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes path->source under a temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestFlagsMissingContext(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/core/flow.go": `package core

import "context"

// tailor is the ctx-taking worker the exported wrapper hides.
func tailor(ctx context.Context) error { return ctx.Err() }

// Tailor drops the caller's control over cancellation.
func Tailor() error { return tailor(context.Background()) }

// Describe is cheap and should not be flagged.
func Describe() string { return "flow" }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 {
		t.Fatalf("got %d issues, want 1: %v", len(issues), issues)
	}
	if !strings.Contains(issues[0].Msg, "Tailor does long-running work") ||
		!strings.Contains(issues[0].Msg, "calls tailor, which takes a context") {
		t.Errorf("unexpected issue: %+v", issues[0])
	}
}

func TestFlagsWrapperOfCtxFunction(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/symexec/analyze.go": `package symexec

import "context"

func analyze(ctx context.Context, prog []byte) error { return nil }

// Analyze is flagged even without touching context.Background: it can
// only call analyze with a context it made up.
func Analyze(prog []byte) error { return analyze(nil, prog) }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "calls analyze, which takes a context") {
		t.Fatalf("got %v, want one wrapper issue", issues)
	}
}

func TestFlagsStrayPrints(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sim/debug.go": `package sim

import "fmt"

func step() {
	fmt.Println("cycle done")
	println("raw")
}
`,
		// Test files and non-internal files are out of scope.
		"internal/sim/debug_test.go": `package sim

import "fmt"

func helper() { fmt.Println("fine in tests") }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("got %d issues, want 2: %v", len(issues), issues)
	}
	if !strings.Contains(issues[0].Msg, "fmt.Println") || !strings.Contains(issues[1].Msg, "builtin println") {
		t.Errorf("unexpected issues: %v", issues)
	}
}

func TestCtxRuleScopedToFlowPackages(t *testing.T) {
	// The same wrapper shape outside core/symexec/faultinject is fine:
	// report formatting, cell libraries etc. have no business with
	// contexts.
	root := writeTree(t, map[string]string{
		"internal/report/table.go": `package report

import "context"

func render(ctx context.Context) error { return nil }

func Render() error { return render(context.Background()) }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("got %v, want none outside the flow packages", issues)
	}
}

func TestCtxRuleCoversServePackage(t *testing.T) {
	// The serving layer drives the flow, so its exported long-running
	// APIs must thread a context too — but http.Handler's ServeHTTP is
	// interface-mandated and exempt.
	root := writeTree(t, map[string]string{
		"internal/serve/serve.go": `package serve

import (
	"context"
	"net/http"
)

func tailor(ctx context.Context) error { return ctx.Err() }

// Tailor hides the request's cancellation from the flow.
func Tailor() error { return tailor(context.Background()) }

type server struct{}

// ServeHTTP cannot take a leading context; it gets one from the request.
func (server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_ = tailor(r.Context())
}
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "Tailor does long-running work") {
		t.Fatalf("got %v, want exactly the Tailor issue (ServeHTTP exempt)", issues)
	}
}

func TestFlagsMethodAndSelectorWrappers(t *testing.T) {
	// The ctx rule sees through receivers: an exported wrapper that
	// drives a ctx-taking method (or a selector call sharing a
	// same-package ctx function's name) is flagged like a bare call.
	root := writeTree(t, map[string]string{
		"internal/faultinject/campaign.go": `package faultinject

import "context"

type engine struct{}

func (engine) run(ctx context.Context) error { return ctx.Err() }

// Campaign hides the campaign's cancellation behind the receiver.
func Campaign() error {
	var e engine
	return e.run(nil)
}

// Sites is structural bookkeeping and stays unflagged.
func Sites() int { return 0 }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "calls run, which takes a context") {
		t.Fatalf("got %v, want exactly the Campaign issue", issues)
	}
}

func TestRepositoryIsClean(t *testing.T) {
	issues, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		t.Errorf("%s:%d: %s", is.File, is.Line, is.Msg)
	}
}

func TestCtxRuleCoversSolverPackages(t *testing.T) {
	// The SAT solver and the equivalence engine can run unboundedly; an
	// exported entry point that hides the context is flagged there too.
	root := writeTree(t, map[string]string{
		"internal/sat/solver.go": `package sat

import "context"

func solve(ctx context.Context) error { return ctx.Err() }

// Solve hides the caller's cancellation from an unbounded search.
func Solve() error { return solve(context.Background()) }
`,
		"internal/equiv/prove.go": `package equiv

import "context"

func prove(ctx context.Context) error { return nil }

// ProveClaims wraps the ctx worker without threading a context.
func ProveClaims() error { return prove(nil) }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("got %d issues, want 2: %v", len(issues), issues)
	}
	for _, is := range issues {
		if !strings.Contains(is.Msg, "without a leading context.Context") {
			t.Errorf("unexpected issue: %+v", is)
		}
	}
}

func TestFlagsBarePanic(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/power/model.go": `package power

import "fmt"

// Scale is library code: failures must be error values.
func Scale(f float64) float64 {
	if f < 0 {
		panic(fmt.Sprintf("negative frequency %v", f))
	}
	return f * 2
}
`,
		// Test files stay out of scope for the panic rule too.
		"internal/power/model_test.go": `package power

func helper() { panic("fine in tests") }
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "bare panic in Scale") {
		t.Fatalf("got %v, want exactly the Scale panic issue", issues)
	}
}

func TestPanicBoundariesExempt(t *testing.T) {
	// must*/Must* helpers, init, and functions owning a recover boundary
	// are the places where panicking is the contract.
	root := writeTree(t, map[string]string{
		"internal/layout/place.go": `package layout

func init() {
	panic("registration conflict")
}

func mustParse(s string) int {
	panic("bad literal " + s)
}

// MustPlace is the documented panicking variant of Place.
func MustPlace() {
	panic("no placement")
}

// Walk converts its visitor's panics into an error at this boundary.
func Walk() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	panic("unwind")
}
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("got %v, want no issues for panic boundaries", issues)
	}
}

func TestPanicOKAnnotation(t *testing.T) {
	// A same-line or previous-line "panic-ok: <reason>" annotation
	// exempts exactly that panic; a bare annotation without a reason
	// does not count.
	root := writeTree(t, map[string]string{
		"internal/layout/route.go": `package layout

func route(n int) int {
	if n < 0 {
		panic("unreachable: callers validate n") // panic-ok: n was range-checked by Place
	}
	if n > 99 {
		// panic-ok: grid widths beyond 99 are rejected at parse time
		panic("unreachable: grid too wide")
	}
	if n == 13 {
		panic("reasonless") // panic-ok:
	}
	return n
}
`,
	})
	issues, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || issues[0].Line != 12 {
		t.Fatalf("got %v, want exactly the reasonless panic at line 12", issues)
	}
}
