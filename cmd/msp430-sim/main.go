// Command msp430-sim runs an MSP430 program on the instruction-level
// golden model and, with -gate, co-simulates it on the gate-level core,
// checking that the two agree.
//
// Usage:
//
//	msp430-sim [-gate] [-max N] prog.s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"bespoke/internal/asm"
	"bespoke/internal/core"
	"bespoke/internal/cpu"
	"bespoke/internal/isasim"
	"bespoke/internal/netlist"
	"bespoke/internal/sim"
)

func main() {
	gate := flag.Bool("gate", false, "also run on the gate-level core and compare")
	vcd := flag.String("vcd", "", "with -gate: dump PC/state/IR waveforms to this VCD file")
	maxInsts := flag.Uint64("max", 1_000_000, "instruction budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msp430-sim [-gate] [-vcd out.vcd] [-max N] prog.s")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *gate, *vcd, *maxInsts); err != nil {
		fmt.Fprintln(os.Stderr, "msp430-sim:", err)
		os.Exit(1)
	}
}

func run(file string, gate bool, vcdOut string, maxInsts uint64) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	m := isasim.New(p.Bytes, p.Origin)
	if err := m.Run(maxInsts); err != nil {
		return err
	}
	fmt.Printf("halted after %d instructions (%d cycles)\n", m.Insts, m.Cycles)
	for i, v := range m.Out {
		fmt.Printf("out[%d] = %#04x (%d)\n", i, v, v)
	}
	if !gate {
		return nil
	}
	if vcdOut != "" {
		return gateRunWithVCD(p, vcdOut, m.Cycles*2)
	}
	c := cpu.Build()
	tr, err := core.RunWorkload(context.Background(), c, p, &core.Workload{MaxCycles: m.Cycles * 2})
	if err != nil {
		return err
	}
	if len(tr.Out) != len(m.Out) {
		return fmt.Errorf("gate-level output length %d, isa %d", len(tr.Out), len(m.Out))
	}
	for i := range tr.Out {
		if tr.Out[i] != m.Out[i] {
			return fmt.Errorf("out[%d]: gate %#x, isa %#x", i, tr.Out[i], m.Out[i])
		}
	}
	fmt.Printf("gate-level run matches (%d cycles)\n", tr.Cycles)
	return nil
}

// gateRunWithVCD runs the gate-level core cycle by cycle, dumping the
// architectural buses to a waveform file.
func gateRunWithVCD(p *asm.Program, path string, maxCycles uint64) error {
	c := cpu.Build()
	h, err := cpu.NewHarnessOn(c, p.Bytes, p.Origin)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var nets []netlist.GateID
	nets = append(nets, c.PC()...)
	nets = append(nets, c.State...)
	nets = append(nets, c.IRReg...)
	nets = append(nets, c.OutWr)
	dump := sim.NewVCD(f, h.Sim, nets)
	for h.Cycles < maxCycles {
		h.Sim.Settle()
		dump.Sample()
		h.StepCycle()
	}
	if err := dump.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d cycles of waveforms to %s (out=%v)\n", h.Cycles, path, h.Out)
	return nil
}
