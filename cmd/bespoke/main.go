// Command bespoke tailors the general purpose gate-level microcontroller
// to one or more application binaries and reports the savings - the
// paper's toolflow as a command-line tool.
//
// Usage:
//
//	bespoke [-coarse] prog.s [more.s ...]
//
// Each argument is an MSP430 assembly file (see internal/asm for the
// dialect). With several programs, the design supports all of them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"bespoke/internal/asm"
	"bespoke/internal/cells"
	"bespoke/internal/core"
	"bespoke/internal/layout"
	"bespoke/internal/netlist"
	"bespoke/internal/report"
	"bespoke/internal/symexec"
)

func main() {
	coarse := flag.Bool("coarse", false, "module-level (Xtensa-like) removal instead of gate-level")
	verilog := flag.String("verilog", "", "write the bespoke netlist as structural Verilog to this file")
	def := flag.String("def", "", "write the bespoke placement as DEF to this file")
	path := flag.Bool("path", false, "print the bespoke design's critical path")
	check := flag.String("check", "", "check whether this update binary runs on the bespoke design for the given programs (Section 3.5)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole flow (0 = unlimited)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bespoke [-coarse] [-verilog out.v] [-path] [-check update.s] [-timeout 30s] prog.s [more.s ...]")
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *check != "" {
		if err := runCheck(ctx, *check, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if err := run(ctx, flag.Args(), *coarse, *verilog, *def, *path); err != nil {
		fatal(err)
	}
}

// fatal prints a stage-aware diagnostic for flow errors — which pipeline
// stage failed, the offending gate when known, and the watchdog's
// partial-progress numbers — instead of one opaque line, then exits.
func fatal(err error) {
	var fe *core.FlowError
	if errors.As(err, &fe) {
		fmt.Fprintf(os.Stderr, "bespoke: the %s stage failed\n", fe.Stage)
		if fe.Gate != netlist.None {
			fmt.Fprintf(os.Stderr, "bespoke:   at gate %d\n", fe.Gate)
		}
		var le *symexec.LimitError
		switch {
		case errors.As(err, &le):
			fmt.Fprintf(os.Stderr, "bespoke:   analysis watchdog: %s\n", le.Reason)
			fmt.Fprintf(os.Stderr, "bespoke:   progress: %d cycles, %d paths, %d branch sites, %d merges, %d worlds pending\n",
				le.Cycles, le.Paths, le.Sites, le.Merges, le.Pending)
			if le.MaxCycles > 0 {
				fmt.Fprintf(os.Stderr, "bespoke:   consider raising the cycle budget (had %d)\n", le.MaxCycles)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "bespoke:   the -timeout budget expired; raise it or simplify the program")
			}
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "bespoke:   the -timeout budget expired; raise it or simplify the program")
		default:
			fmt.Fprintf(os.Stderr, "bespoke:   %v\n", fe.Err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "bespoke:", err)
	}
	os.Exit(1)
}

// runCheck decides in-field update support: the update is supported when
// every gate it can exercise is kept in the bespoke design for the base
// programs (the paper's Section 3.5 subset test).
func runCheck(ctx context.Context, updateFile string, baseFiles []string) error {
	load := func(f string) (*asm.Program, error) {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		return p, nil
	}
	var progs []*asm.Program
	for _, f := range baseFiles {
		p, err := load(f)
		if err != nil {
			return err
		}
		progs = append(progs, p)
	}
	update, err := load(updateFile)
	if err != nil {
		return err
	}

	base, err := core.UnionAnalysis(ctx, progs, symexec.Options{})
	if err != nil {
		return err
	}
	upd, c, err := symexec.Analyze(ctx, update, symexec.Options{})
	if err != nil {
		return fmt.Errorf("analyzing update: %w", err)
	}

	missingByModule := map[string]int{}
	missing := 0
	for g := range upd.Toggled {
		if upd.Toggled[g] && !base.Toggled[g] {
			missing++
			missingByModule[c.N.ModuleOf(netlist.GateID(g))]++
		}
	}
	if missing == 0 {
		fmt.Printf("SUPPORTED: %s uses only gates kept in the bespoke design for %v\n", updateFile, baseFiles)
		return nil
	}
	fmt.Printf("NOT SUPPORTED: %s needs %d gates the bespoke design removed:\n", updateFile, missing)
	mods := make([]string, 0, len(missingByModule))
	for m := range missingByModule {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	for _, m := range mods {
		fmt.Printf("  %-30s %d gates\n", m, missingByModule[m])
	}
	os.Exit(3)
	return nil
}

func run(ctx context.Context, files []string, coarse bool, verilogOut, defOut string, showPath bool) error {
	var progs []*asm.Program
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		progs = append(progs, p)
	}

	var res *core.Result
	var err error
	switch {
	case coarse:
		res, err = core.TailorCoarse(ctx, progs[0], nil, core.Options{})
	case len(progs) == 1:
		res, err = core.Tailor(ctx, progs[0], nil, core.Options{})
	default:
		res, err = core.TailorMulti(ctx, progs, nil, core.Options{})
	}
	if err != nil {
		return err
	}

	t := report.NewTable("Bespoke tailoring report", "Metric", "Baseline", "Bespoke", "Savings")
	t.AddRow("Gates", fmt.Sprint(res.Baseline.Gates), fmt.Sprint(res.Bespoke.Gates), report.Pct(res.GateSavings))
	t.AddRow("Flip-flops", fmt.Sprint(res.Baseline.Dffs), fmt.Sprint(res.Bespoke.Dffs), "")
	t.AddRow("Area (um^2)", fmt.Sprintf("%.0f", res.Baseline.Power.AreaUm2),
		fmt.Sprintf("%.0f", res.Bespoke.Power.AreaUm2), report.Pct(res.AreaSavings))
	t.AddRow("Power (uW)", fmt.Sprintf("%.1f", res.Baseline.Power.TotalUW),
		fmt.Sprintf("%.1f", res.Bespoke.Power.TotalUW), report.Pct(res.PowerSavings))
	t.AddRow("Power at Vmin (uW)", "-", fmt.Sprintf("%.1f", res.BespokeAtVmin.TotalUW), report.Pct(res.PowerSavingsVmin))
	t.AddRow("Critical path (ps)", fmt.Sprintf("%.0f", res.Baseline.Timing.CriticalPs),
		fmt.Sprintf("%.0f", res.Bespoke.Timing.CriticalPs), "")
	t.AddRow("Exposed slack", "-", report.Pct(res.Bespoke.Timing.SlackFrac), "")
	t.AddRow("Vmin (V)", fmt.Sprintf("%.2f", res.Baseline.Timing.Vmin), fmt.Sprintf("%.2f", res.Bespoke.Timing.Vmin), "")
	t.Write(os.Stdout)

	fmt.Printf("\nAnalysis: %d paths, %d merges, %d cycles; cut %d gates, %d kept\n",
		res.Analysis.Paths, res.Analysis.Merges, res.Analysis.Cycles, res.CutStats.Cut, res.CutStats.Kept)

	// Per-module accounting (modules removed entirely still get a row).
	byMod := res.BespokeCore.N.GatesByModule()
	baseMod := res.BaselineCore.N.GatesByModule()
	names := make([]string, 0, len(baseMod))
	for n := range baseMod {
		names = append(names, n)
	}
	sort.Strings(names)
	mt := report.NewTable("Gates by module", "Module", "Baseline", "Bespoke", "Removed")
	for _, n := range names {
		base := len(baseMod[n])
		kept := len(byMod[n])
		frac := "-"
		if base > 0 {
			frac = report.Pct(1 - float64(kept)/float64(base))
		}
		mt.AddRow(n, fmt.Sprint(base), fmt.Sprint(kept), frac)
	}
	mt.Write(os.Stdout)

	if showPath {
		pt := report.NewTable("Bespoke critical path", "Arrival (ps)", "Cell", "Module")
		steps := res.Bespoke.Timing.CriticalPath(res.BespokeCore.N)
		for _, st := range steps {
			pt.AddRow(fmt.Sprintf("%.0f", st.ArrivalPs), st.Kind.String(), st.Module)
		}
		pt.Write(os.Stdout)
	}

	if defOut != "" {
		f, err := os.Create(defOut)
		if err != nil {
			return err
		}
		defer f.Close()
		place := layout.Place(res.BespokeCore.N, cells.TSMC65())
		if err := place.WriteDEF(f, res.BespokeCore.N, "bespoke_core"); err != nil {
			return err
		}
		fmt.Printf("\nwrote placement DEF to %s\n", defOut)
	}
	if verilogOut != "" {
		f, err := os.Create(verilogOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.BespokeCore.N.WriteVerilog(f, "bespoke_core"); err != nil {
			return err
		}
		fmt.Printf("\nwrote structural Verilog to %s\n", verilogOut)
	}
	return nil
}
