// Command benchdiff guards kernel performance across PRs. It has two
// modes:
//
//	benchdiff -summarize bench.txt          # go test -bench text -> JSON
//	benchdiff [-threshold 1.10] old.json new.json
//	benchdiff [-threshold 1.10] -baseline-glob 'BENCH_*.json' new.json
//
// The JSON shape is the committed BENCH_<n>.json trajectory:
//
//	{"BenchmarkName": {"ns_per_op": 123, "count": 3}}
//
// In diff mode the exit status is 1 when any benchmark present in both
// files slowed down by more than the threshold ratio (default 1.10, a
// 10% regression); benchmarks that appear or disappear are reported but
// do not fail the diff, so the suite can grow. With -baseline-glob the
// baseline is the highest-numbered matching file, so committing
// BENCH_7.json later retargets the gate without a CI edit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

type entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Count   int     `json:"count"`
}

func main() {
	summarize := flag.Bool("summarize", false, "parse go test -bench output and emit the JSON summary")
	threshold := flag.Float64("threshold", 1.10, "new/old ns-per-op ratio above which a benchmark fails")
	baselineGlob := flag.String("baseline-glob", "", "pick the highest-numbered file matching this glob as the baseline")
	flag.Parse()

	if *summarize {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-summarize wants exactly one bench.txt argument"))
		}
		if err := doSummarize(flag.Arg(0), os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var oldPath, newPath string
	switch {
	case *baselineGlob != "" && flag.NArg() == 1:
		p, err := newestBaseline(*baselineGlob)
		if err != nil {
			fatal(err)
		}
		if p == "" {
			fmt.Printf("benchdiff: no baseline matches %q yet; nothing to compare\n", *baselineGlob)
			return
		}
		oldPath, newPath = p, flag.Arg(0)
	case *baselineGlob == "" && flag.NArg() == 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fatal(fmt.Errorf("want old.json new.json, or -baseline-glob with new.json"))
	}

	older, err := load(oldPath)
	if err != nil {
		fatal(err)
	}
	newer, err := load(newPath)
	if err != nil {
		fatal(err)
	}
	if regressions := diff(os.Stdout, oldPath, older, newer, *threshold); regressions > 0 {
		os.Exit(1)
	}
}

// doSummarize averages each benchmark's ns/op over its repetitions in a
// `go test -bench` text log and writes the JSON summary.
func doSummarize(path string, w *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum := map[string]*entry{}
	line := regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := line.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := sum[m[1]]
		if e == nil {
			e = &entry{}
			sum[m[1]] = e
		}
		e.NsPerOp += ns
		e.Count++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	out := make(map[string]entry, len(sum))
	for name, e := range sum {
		out[name] = entry{NsPerOp: e.NsPerOp / float64(e.Count), Count: e.Count}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// newestBaseline returns the matching file with the highest embedded
// number ("" when none match).
func newestBaseline(glob string) (string, error) {
	matches, err := filepath.Glob(glob)
	if err != nil {
		return "", err
	}
	num := regexp.MustCompile(`(\d+)`)
	best, bestN := "", -1
	for _, m := range matches {
		n := 0
		if d := num.FindString(filepath.Base(m)); d != "" {
			n, _ = strconv.Atoi(d)
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	return best, nil
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// diff prints a comparison table and returns the number of regressions
// beyond the threshold.
func diff(w *os.File, oldPath string, older, newer map[string]entry, threshold float64) int {
	names := make([]string, 0, len(newer))
	for name := range newer {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "benchdiff: baseline %s, fail ratio %.2f\n", oldPath, threshold)
	for _, name := range names {
		n := newer[name]
		o, ok := older[name]
		if !ok || o.NsPerOp <= 0 {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  (new benchmark)\n", name, n.NsPerOp)
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-40s %12.0f -> %12.0f ns/op  %.3fx  %s\n", name, o.NsPerOp, n.NsPerOp, ratio, verdict)
	}
	for name := range older {
		if _, ok := newer[name]; !ok {
			fmt.Fprintf(w, "  %-40s (removed)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d benchmark(s) slowed down more than %.0f%%\n", regressions, (threshold-1)*100)
	} else {
		fmt.Fprintln(w, "benchdiff: no regressions")
	}
	return regressions
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
