// Command bespoke-serve runs the tailoring service: an HTTP/JSON API
// over the flow with request coalescing, a bounded cold-tailor worker
// pool, and a two-level (memory + versioned on-disk) result cache.
//
// Usage:
//
//	bespoke-serve [-addr :8372] [-cache-dir DIR] [-workers N] ...
//
// See internal/serve for the endpoint and wire-format documentation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bespoke/internal/core"
	"bespoke/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	cacheDir := flag.String("cache-dir", "", "on-disk cache directory (empty = memory-only)")
	workers := flag.Int("workers", 0, "cold-tailor pool width (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission cap on cold tailors queued+running (0 = 4x workers)")
	defaultTimeout := flag.Duration("default-timeout", 2*time.Minute, "flow budget when the request sets no timeout_ms")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "clamp on requested timeouts")
	maxEntries := flag.Int("max-entries", 0, "in-memory cache entry cap (0 = default)")
	maxBytes := flag.Int64("max-bytes", 0, "in-memory cache byte cap (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bespoke-serve [flags]")
		os.Exit(2)
	}
	if err := run(*addr, *cacheDir, *workers, *queue, *defaultTimeout, *maxTimeout, *maxEntries, *maxBytes, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-serve:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, workers, queue int, defaultTimeout, maxTimeout time.Duration, maxEntries int, maxBytes int64, quiet bool) error {
	logger := log.New(os.Stderr, "bespoke-serve: ", log.LstdFlags)

	cacheCfg := core.CacheConfig{MaxEntries: maxEntries, MaxBytes: maxBytes}
	if cacheDir != "" {
		disk, err := core.NewDiskTailorCache(cacheDir)
		if err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		cacheCfg.Disk = disk
		if entries, err := disk.Len(); err == nil {
			logger.Printf("disk cache at %s (%d entries)", cacheDir, entries)
		}
	}

	cfg := serve.Config{
		Cache:          core.NewTailorCacheWith(cacheCfg),
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: defaultTimeout,
		MaxTimeout:     maxTimeout,
	}
	if !quiet {
		cfg.Logf = logger.Printf
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d queue=%d)", addr, cfg.Workers, cfg.QueueDepth)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	logger.Printf("served %d requests (%d cold, %d coalesced, %d memory, %d disk)",
		st.Requests, st.Cold, st.Coalesced, st.Memory, st.Disk)
	return nil
}
