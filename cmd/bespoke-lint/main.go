// Command bespoke-lint runs the structural netlist analyzers over the
// elaborated base microcontroller, over a bespoke design tailored to one
// or more applications, or over a serialized netlist file — the static
// half of signoff, usable without any workload.
//
// Usage:
//
//	bespoke-lint                 # lint the elaborated base core
//	bespoke-lint prog.s [more.s] # tailor first, lint the bespoke core
//	bespoke-lint -bench mult     # same, for an embedded Table 1 benchmark
//	bespoke-lint -netlist f.nl   # lint a serialized netlist file
//	bespoke-lint -netlist f.nl -fix  # also fold const residue in place
//
// Findings can be waived per module with .lintwaive files (see -waive);
// a .lintwaive in the current directory is picked up automatically.
// Waived findings are still printed, marked, but do not affect the exit
// status.
//
// The exit status is 0 when the netlist is clean (or every finding is
// waived), 1 when there are unwaived findings, 2 on usage or flow
// errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"bespoke/internal/asm"
	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/cpu"
	"bespoke/internal/lint"
	"bespoke/internal/netlist"
)

func main() {
	analyzers := flag.String("analyzer", "", "comma-separated analyzers to run (default all; see -list)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	benches := flag.String("bench", "", "comma-separated Table 1 benchmark names to tailor and lint")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	netFile := flag.String("netlist", "", "lint a serialized netlist file instead of building a core")
	fix := flag.Bool("fix", false, "fold const-residue findings and rewrite -netlist in place")
	waive := flag.String("waive", "", `comma-separated .lintwaive files (default: ./.lintwaive if present; "none" disables)`)
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	flag.Parse()

	if *list {
		for _, name := range lint.Analyzers() {
			fmt.Println(name)
		}
		return
	}
	if *fix && *netFile == "" {
		fatal(fmt.Errorf("-fix rewrites a netlist file in place and requires -netlist"))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := lint.Config{}
	if *analyzers != "" {
		cfg.Analyzers = strings.Split(*analyzers, ",")
	}
	waivers, err := loadWaivers(*waive)
	if err != nil {
		fatal(err)
	}
	cfg.Waivers = waivers

	var (
		target string
		rep    *lint.Report
		n      *netlist.Netlist
	)
	if *netFile != "" {
		target = *netFile
		n, rep, err = lintFile(ctx, *netFile, cfg, *fix)
	} else {
		var c *cpu.Core
		target, c, err = buildTarget(ctx, *benches, flag.Args())
		if err == nil {
			n = c.N
			rep, err = core.LintCore(ctx, c, cfg)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		writeJSON(os.Stdout, target, rep)
	} else {
		writeText(os.Stdout, target, n, rep)
	}
	if len(rep.Findings) > rep.Waived {
		os.Exit(1)
	}
}

// loadWaivers resolves the -waive flag: explicit files, "none", or the
// conventional ./.lintwaive when present.
func loadWaivers(arg string) ([]lint.Waiver, error) {
	switch arg {
	case "none":
		return nil, nil
	case "":
		if _, err := os.Stat(".lintwaive"); err != nil {
			return nil, nil
		}
		return lint.LoadWaiverFiles(".lintwaive")
	default:
		return lint.LoadWaiverFiles(strings.Split(arg, ",")...)
	}
}

// lintFile lints a serialized netlist, optionally folding const residue
// and rewriting the file first. The file carries no core context, so no
// keep-alive roots are assumed.
func lintFile(ctx context.Context, path string, cfg lint.Config, fix bool) (*netlist.Netlist, *lint.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	n, err := netlist.Decode(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if fix {
		if folded := lint.FoldConstResidue(n); folded > 0 {
			if err := os.WriteFile(path, netlist.Encode(n), 0o644); err != nil {
				return nil, nil, err
			}
			fmt.Fprintf(os.Stderr, "bespoke-lint: folded %d const-residue gate(s), rewrote %s\n", folded, path)
		}
	}
	rep, err := lint.Run(ctx, n, cfg)
	return n, rep, err
}

// buildTarget returns the core to lint: the plain elaboration with no
// arguments, or the bespoke design tailored to the given programs
// (assembly files and/or embedded benchmarks).
func buildTarget(ctx context.Context, benches string, files []string) (string, *cpu.Core, error) {
	var progs []*asm.Program
	var names []string
	if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			b := bench.ByName(name)
			if b == nil {
				return "", nil, fmt.Errorf("unknown benchmark %q (see internal/bench)", name)
			}
			progs = append(progs, b.MustProg())
			names = append(names, name)
		}
	}
	if len(progs) == 0 && len(files) == 0 {
		return "base core", cpu.Build(), nil
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return "", nil, err
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", f, err)
		}
		progs = append(progs, p)
		names = append(names, f)
	}
	var res *core.Result
	var err error
	if len(progs) == 1 {
		res, err = core.Tailor(ctx, progs[0], nil, core.Options{})
	} else {
		res, err = core.TailorMulti(ctx, progs, nil, core.Options{})
	}
	if err != nil {
		return "", nil, err
	}
	return "bespoke core for " + strings.Join(names, ", "), res.BespokeCore, nil
}

func writeText(w *os.File, target string, n *netlist.Netlist, rep *lint.Report) {
	fmt.Fprintf(w, "bespoke-lint: %s: %d gates, analyzers: %s\n",
		target, rep.NumGates, strings.Join(rep.Ran, ", "))
	for _, f := range rep.Findings {
		loc := ""
		if f.Gate != netlist.None {
			loc = fmt.Sprintf(" gate %d (%s)", f.Gate, n.ModuleOf(f.Gate))
			if name := n.Gates[f.Gate].Name; name != "" {
				loc += " " + name
			}
		}
		if f.Net != netlist.None {
			loc += fmt.Sprintf(" net %d", f.Net)
		}
		waived := ""
		if f.Waived {
			waived = fmt.Sprintf(" (waived: %s)", f.WaiveReason)
		}
		fmt.Fprintf(w, "%s: %s:%s %s%s\n", f.Severity, f.Analyzer, loc, f.Detail, waived)
	}
	switch {
	case len(rep.Findings) == 0:
		fmt.Fprintln(w, "clean")
	case rep.Waived > 0:
		fmt.Fprintf(w, "%d findings (%d waived)\n", len(rep.Findings), rep.Waived)
	default:
		fmt.Fprintf(w, "%d findings\n", len(rep.Findings))
	}
}

// jsonFinding mirrors lint.Finding with the severity as a string, so the
// report is stable and readable for downstream tooling.
type jsonFinding struct {
	Analyzer    string `json:"analyzer"`
	Severity    string `json:"severity"`
	Gate        int32  `json:"gate"`
	Net         int32  `json:"net"`
	Detail      string `json:"detail"`
	Waived      bool   `json:"waived,omitempty"`
	WaiveReason string `json:"waive_reason,omitempty"`
}

type jsonReport struct {
	Target   string        `json:"target"`
	NumGates int           `json:"num_gates"`
	Ran      []string      `json:"ran"`
	Waived   int           `json:"waived"`
	Findings []jsonFinding `json:"findings"`
}

func writeJSON(w *os.File, target string, rep *lint.Report) {
	out := jsonReport{Target: target, NumGates: rep.NumGates, Ran: rep.Ran, Waived: rep.Waived, Findings: []jsonFinding{}}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, jsonFinding{
			Analyzer:    f.Analyzer,
			Severity:    f.Severity.String(),
			Gate:        int32(f.Gate),
			Net:         int32(f.Net),
			Detail:      f.Detail,
			Waived:      f.Waived,
			WaiveReason: f.WaiveReason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	var fe *core.FlowError
	if errors.As(err, &fe) {
		fmt.Fprintf(os.Stderr, "bespoke-lint: the %s stage failed\n", fe.Stage)
		if fe.Gate != netlist.None {
			fmt.Fprintf(os.Stderr, "bespoke-lint:   at gate %d\n", fe.Gate)
		}
		fmt.Fprintf(os.Stderr, "bespoke-lint:   %v\n", fe.Err)
	} else {
		fmt.Fprintln(os.Stderr, "bespoke-lint:", err)
	}
	os.Exit(2)
}
