// Command bespoke-prove formally verifies the constants the tailoring
// flow wants to stitch: for each target application it runs the activity
// analysis, discharges every claimed constant as a SAT proof obligation
// (implied by the program image and the recorded reachable bus values),
// and checks the cut+re-synthesized netlist against the baseline with a
// miter.
//
// Usage:
//
//	bespoke-prove -bench mult          # one Table 1 benchmark
//	bespoke-prove -bench all           # the whole suite
//	bespoke-prove prog.s [more.s]      # assembly files
//
// The exit status is 0 when every claim is proved or explicitly assumed
// and the miter holds, 1 when any claim is refuted or a miter fails, 2 on
// usage, flow or timeout errors. With -timeout, partial progress made
// before the deadline is still reported.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bespoke/internal/asm"
	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/cut"
	"bespoke/internal/equiv"
	"bespoke/internal/symexec"
	"bespoke/internal/synth"
)

type target struct {
	name string
	prog *asm.Program
}

// result is one target's proof outcome.
type result struct {
	Name     string  `json:"name"`
	Claims   int     `json:"claims"`
	Proved   int     `json:"proved"` // structural + SAT
	Struct   int     `json:"proved_structural"`
	SAT      int     `json:"proved_sat"`
	Assumed  int     `json:"assumed"`
	Refuted  int     `json:"refuted"`
	Queries  int64   `json:"sat_queries"`
	Miter    bool    `json:"miter_equivalent"`
	MiterObs int     `json:"miter_obligations"`
	Ms       float64 `json:"ms"`
	Timeout  bool    `json:"timeout,omitempty"`
	Error    string  `json:"error,omitempty"`
}

func main() {
	benches := flag.String("bench", "", `comma-separated Table 1 benchmark names, or "all"`)
	jsonOut := flag.Bool("json", false, "emit the results as JSON")
	workers := flag.Int("workers", 0, "parallel proof workers (0 = all cores)")
	budget := flag.Int64("budget", 0, "per-query conflict budget (0 = default)")
	noMiter := flag.Bool("no-miter", false, "skip the base-vs-bespoke miter check")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	targets, err := gather(*benches, flag.Args())
	if err != nil {
		fatal(err)
	}

	opts := equiv.Options{Workers: *workers, QueryBudget: *budget}
	exit := 0
	var results []result
	for _, tg := range targets {
		r := prove(ctx, tg, opts, !*noMiter)
		results = append(results, r)
		if !*jsonOut {
			writeText(os.Stdout, r)
		}
		if r.Refuted > 0 || (!*noMiter && r.Error == "" && !r.Miter) {
			if exit < 1 {
				exit = 1
			}
		}
		if r.Error != "" || r.Timeout {
			exit = 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
	os.Exit(exit)
}

// gather resolves benchmark names and assembly files into targets.
func gather(benches string, files []string) ([]target, error) {
	var targets []target
	if benches == "all" {
		for _, b := range bench.All() {
			targets = append(targets, target{name: b.Name, prog: b.MustProg()})
		}
	} else if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			b := bench.ByName(strings.TrimSpace(name))
			if b == nil {
				return nil, fmt.Errorf("unknown benchmark %q (see internal/bench)", name)
			}
			targets = append(targets, target{name: b.Name, prog: b.MustProg()})
		}
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		targets = append(targets, target{name: f, prog: p})
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("nothing to prove: pass -bench names or assembly files")
	}
	return targets, nil
}

// prove runs the analysis, the per-claim proofs and (optionally) the
// miter for one target. Errors and timeouts are folded into the result so
// a sweep keeps going.
func prove(ctx context.Context, tg target, opts equiv.Options, miter bool) (r result) {
	r = result{Name: tg.name}
	start := time.Now()
	defer func() { r.Ms = float64(time.Since(start).Microseconds()) / 1000 }()

	res, c, err := symexec.Analyze(ctx, tg.prog, symexec.Options{RecordDomains: true})
	if err != nil {
		r.Error = err.Error()
		return r
	}
	env, err := equiv.NewCoreEnv(c, res)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	r.Claims = len(env.Claims)

	rep, err := equiv.ProveClaims(ctx, env, opts)
	if err != nil {
		var le *equiv.LimitError
		if errors.As(err, &le) && le.Report != nil {
			// Partial progress: report what was decided before the abort.
			r.Timeout = true
			rep = le.Report
		} else {
			r.Error = err.Error()
			return r
		}
	}
	r.Struct = rep.ProvedStructural
	r.SAT = rep.ProvedSAT
	r.Proved = rep.ProvedStructural + rep.ProvedSAT
	r.Assumed = rep.Assumed
	r.Refuted = rep.Refuted
	r.Queries = rep.SATQueries

	if !miter || r.Timeout || r.Refuted > 0 {
		return r
	}
	bespoke := c.Clone()
	if _, err := cut.Apply(bespoke.N, res.Toggled, res.ConstVal); err != nil {
		r.Error = err.Error()
		return r
	}
	keep := append(bespoke.ROM.Inputs(), bespoke.RAM.Inputs()...)
	synth.Optimize(bespoke.N, keep)
	mres, err := equiv.ProveMiter(ctx, env, bespoke.N, rep, opts)
	if err != nil {
		var le *equiv.LimitError
		if errors.As(err, &le) {
			r.Timeout = true
			return r
		}
		r.Error = err.Error()
		return r
	}
	r.Miter = mres.Equivalent
	r.MiterObs = mres.Obligations
	return r
}

func writeText(w *os.File, r result) {
	if r.Error != "" {
		fmt.Fprintf(w, "%-18s ERROR: %s\n", r.Name, r.Error)
		return
	}
	status := "proved"
	if r.Refuted > 0 {
		status = "REFUTED"
	} else if r.Timeout {
		status = "timeout (partial)"
	} else if r.MiterObs > 0 && !r.Miter {
		status = "MITER FAILED"
	}
	miter := "-"
	if r.MiterObs > 0 {
		miter = fmt.Sprintf("ok/%d", r.MiterObs)
		if !r.Miter {
			miter = fmt.Sprintf("FAIL/%d", r.MiterObs)
		}
	}
	fmt.Fprintf(w, "%-18s %5d claims: %5d structural %5d sat %4d assumed %3d refuted  miter %-8s %7.0fms  %s\n",
		r.Name, r.Claims, r.Struct, r.SAT, r.Assumed, r.Refuted, miter, r.Ms, status)
}

func fatal(err error) {
	var fe *core.FlowError
	if errors.As(err, &fe) {
		fmt.Fprintf(os.Stderr, "bespoke-prove: the %s stage failed\n", fe.Stage)
		fmt.Fprintf(os.Stderr, "bespoke-prove:   %v\n", fe.Err)
	} else {
		fmt.Fprintln(os.Stderr, "bespoke-prove:", err)
	}
	os.Exit(2)
}
