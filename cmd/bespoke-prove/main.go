// Command bespoke-prove formally verifies the constants the tailoring
// flow wants to stitch: for each target application it runs the activity
// analysis, discharges every claimed constant as a SAT proof obligation
// (implied by the program image and the recorded reachable bus values),
// and checks the cut+re-synthesized netlist against the baseline with a
// miter.
//
// Usage:
//
//	bespoke-prove -bench mult          # one Table 1 benchmark
//	bespoke-prove -bench all           # the whole suite
//	bespoke-prove -induct -bench all   # with inductive strengthening
//	bespoke-prove prog.s [more.s]      # assembly files
//
// With -induct, the static invariant engine (internal/induct) first
// infers and discharges reachable-state invariants by k-induction; the
// per-claim proofs and the miter then consume those PROVED facts instead
// of the dynamically recorded bus domains, and claims in the inductive
// core are upgraded. -k caps the induction ladder depth, -invariants
// prints the per-benchmark proved-invariant table, and -max-assumed N
// fails the sweep (exit 1) when the total of assumed claims exceeds N —
// the CI gate that keeps the assumption tail from regressing.
//
// The exit status is 0 when every claim is proved or explicitly assumed
// and the miter holds, 1 when any claim is refuted, a miter fails, or
// -max-assumed is exceeded, 2 on usage, flow or timeout errors. With
// -timeout, partial progress made before the deadline is still reported.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bespoke/internal/asm"
	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/cut"
	"bespoke/internal/equiv"
	"bespoke/internal/induct"
	"bespoke/internal/symexec"
	"bespoke/internal/synth"
)

type target struct {
	name string
	prog *asm.Program
}

// result is one target's proof outcome.
type result struct {
	Name     string  `json:"name"`
	Claims   int     `json:"claims"`
	Proved   int     `json:"proved"` // structural + SAT + induction
	Struct   int     `json:"proved_structural"`
	SAT      int     `json:"proved_sat"`
	Induct   int     `json:"proved_induct,omitempty"`
	Assumed  int     `json:"assumed"`
	Refuted  int     `json:"refuted"`
	Queries  int64   `json:"sat_queries"`
	Miter    bool    `json:"miter_equivalent"`
	MiterObs int     `json:"miter_obligations"`
	Ms       float64 `json:"ms"`
	Timeout  bool    `json:"timeout,omitempty"`
	Error    string  `json:"error,omitempty"`

	// Inductive strengthening summary (present with -induct).
	K              int            `json:"induct_k,omitempty"`
	Invariants     int            `json:"invariants,omitempty"`
	InvariantsUsed int            `json:"invariants_used,omitempty"`
	Candidates     int            `json:"induct_candidates,omitempty"`
	InductRounds   int            `json:"induct_rounds,omitempty"`
	InductQueries  int64          `json:"induct_queries,omitempty"`
	InductConfl    int64          `json:"induct_conflicts,omitempty"`
	InvariantTable []invariantRow `json:"invariant_table,omitempty"`
}

// invariantRow is one proved invariant with its per-claim-proof use count.
type invariantRow struct {
	Name  string `json:"name"`
	K     int    `json:"k"`
	Cubes int    `json:"cubes,omitempty"`
	Used  int    `json:"used"`
}

func main() {
	benches := flag.String("bench", "", `comma-separated Table 1 benchmark names, or "all"`)
	jsonOut := flag.Bool("json", false, "emit the results as JSON")
	workers := flag.Int("workers", 0, "parallel proof workers (0 = all cores)")
	budget := flag.Int64("budget", 0, "per-query conflict budget (0 = default)")
	noMiter := flag.Bool("no-miter", false, "skip the base-vs-bespoke miter check")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	useInduct := flag.Bool("induct", false, "infer and prove reachable-state invariants by k-induction; drop the dynamic-domain hypotheses")
	kDepth := flag.Int("k", 0, "maximum induction ladder depth with -induct (0 = engine default)")
	showInv := flag.Bool("invariants", false, "print the proved-invariant table per benchmark (implies -induct)")
	maxAssumed := flag.Int("max-assumed", -1, "exit 1 when the sweep's total assumed claims exceed this (-1 = no gate)")
	flag.Parse()
	if *showInv {
		*useInduct = true
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	targets, err := gather(*benches, flag.Args())
	if err != nil {
		fatal(err)
	}

	cfg := proveConfig{
		opts:    equiv.Options{Workers: *workers, QueryBudget: *budget},
		miter:   !*noMiter,
		induct:  *useInduct,
		inductK: *kDepth,
	}
	exit := 0
	totalAssumed := 0
	var results []result
	for _, tg := range targets {
		r := prove(ctx, tg, cfg)
		results = append(results, r)
		totalAssumed += r.Assumed
		if !*jsonOut {
			writeText(os.Stdout, r)
			if *showInv && len(r.InvariantTable) > 0 {
				writeInvariants(os.Stdout, r)
			}
		}
		if r.Refuted > 0 || (cfg.miter && r.Error == "" && !r.Miter) {
			if exit < 1 {
				exit = 1
			}
		}
		if r.Error != "" || r.Timeout {
			exit = 2
		}
	}
	if *maxAssumed >= 0 && totalAssumed > *maxAssumed {
		fmt.Fprintf(os.Stderr, "bespoke-prove: %d claims assumed across the sweep, budget is %d\n",
			totalAssumed, *maxAssumed)
		if exit < 1 {
			exit = 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
	os.Exit(exit)
}

// gather resolves benchmark names and assembly files into targets.
func gather(benches string, files []string) ([]target, error) {
	var targets []target
	if benches == "all" {
		for _, b := range bench.All() {
			targets = append(targets, target{name: b.Name, prog: b.MustProg()})
		}
	} else if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			b := bench.ByName(strings.TrimSpace(name))
			if b == nil {
				return nil, fmt.Errorf("unknown benchmark %q (see internal/bench)", name)
			}
			targets = append(targets, target{name: b.Name, prog: b.MustProg()})
		}
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		targets = append(targets, target{name: f, prog: p})
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("nothing to prove: pass -bench names or assembly files")
	}
	return targets, nil
}

// proveConfig bundles the per-target knobs of one sweep.
type proveConfig struct {
	opts    equiv.Options
	miter   bool
	induct  bool
	inductK int
}

// prove runs the analysis, the per-claim proofs and (optionally) the
// miter for one target. Errors and timeouts are folded into the result so
// a sweep keeps going.
func prove(ctx context.Context, tg target, cfg proveConfig) (r result) {
	r = result{Name: tg.name}
	start := time.Now()
	defer func() { r.Ms = float64(time.Since(start).Microseconds()) / 1000 }()

	res, c, err := symexec.Analyze(ctx, tg.prog, symexec.Options{RecordDomains: true})
	if err != nil {
		r.Error = err.Error()
		return r
	}
	env, err := equiv.NewCoreEnv(c, res)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	r.Claims = len(env.Claims)

	if cfg.induct {
		spec, serr := induct.NewCoreSpec(c, res, induct.DefaultSampleCycles)
		if serr != nil {
			r.Error = serr.Error()
			return r
		}
		ires, ierr := induct.Prove(ctx, spec, env.Claims, induct.Options{
			K:           cfg.inductK,
			QueryBudget: cfg.opts.QueryBudget,
		})
		if ierr != nil {
			r.Error = ierr.Error()
			return r
		}
		env.Invariants = ires.Invariants
		env.InductCore = ires.Core
		r.K = ires.K
		r.Invariants = len(ires.Invariants)
		r.Candidates = ires.Candidates
		r.InductRounds = ires.Rounds
		r.InductQueries = ires.Queries
		r.InductConfl = ires.Conflicts
	}

	rep, err := equiv.ProveClaims(ctx, env, cfg.opts)
	if err != nil {
		var le *equiv.LimitError
		if errors.As(err, &le) && le.Report != nil {
			// Partial progress: report what was decided before the abort.
			r.Timeout = true
			rep = le.Report
		} else {
			r.Error = err.Error()
			return r
		}
	}
	r.Struct = rep.ProvedStructural
	r.SAT = rep.ProvedSAT
	r.Induct = rep.ProvedInduct
	r.Proved = rep.Proved()
	r.Assumed = rep.Assumed
	r.Refuted = rep.Refuted
	r.Queries = rep.SATQueries
	if cfg.induct {
		use := rep.InvariantUse(len(env.Invariants))
		for i := range env.Invariants {
			iv := &env.Invariants[i]
			r.InvariantTable = append(r.InvariantTable, invariantRow{
				Name: iv.Name, K: iv.K, Cubes: len(iv.Cubes), Used: use[i],
			})
			if use[i] > 0 {
				r.InvariantsUsed++
			}
		}
	}

	if !cfg.miter || r.Timeout || r.Refuted > 0 {
		return r
	}
	bespoke := c.Clone()
	if _, err := cut.Apply(bespoke.N, res.Toggled, res.ConstVal); err != nil {
		r.Error = err.Error()
		return r
	}
	keep := append(bespoke.ROM.Inputs(), bespoke.RAM.Inputs()...)
	synth.Optimize(bespoke.N, keep)
	mres, err := equiv.ProveMiter(ctx, env, bespoke.N, rep, cfg.opts)
	if err != nil {
		var le *equiv.LimitError
		if errors.As(err, &le) {
			r.Timeout = true
			return r
		}
		r.Error = err.Error()
		return r
	}
	r.Miter = mres.Equivalent
	r.MiterObs = mres.Obligations
	return r
}

func writeText(w *os.File, r result) {
	if r.Error != "" {
		fmt.Fprintf(w, "%-18s ERROR: %s\n", r.Name, r.Error)
		return
	}
	status := "proved"
	if r.Refuted > 0 {
		status = "REFUTED"
	} else if r.Timeout {
		status = "timeout (partial)"
	} else if r.MiterObs > 0 && !r.Miter {
		status = "MITER FAILED"
	}
	miter := "-"
	if r.MiterObs > 0 {
		miter = fmt.Sprintf("ok/%d", r.MiterObs)
		if !r.Miter {
			miter = fmt.Sprintf("FAIL/%d", r.MiterObs)
		}
	}
	ind := ""
	if r.K > 0 {
		ind = fmt.Sprintf(" %4d induct(k=%d, %d/%d inv used)", r.Induct, r.K, r.InvariantsUsed, r.Invariants)
	}
	fmt.Fprintf(w, "%-18s %5d claims: %5d structural %5d sat%s %4d assumed %3d refuted  miter %-8s %7.0fms  %s\n",
		r.Name, r.Claims, r.Struct, r.SAT, ind, r.Assumed, r.Refuted, miter, r.Ms, status)
}

// writeInvariants prints the per-benchmark proved-invariant table.
func writeInvariants(w *os.File, r result) {
	for _, row := range r.InvariantTable {
		shape := "implication"
		if row.Cubes > 0 {
			shape = fmt.Sprintf("%d cubes", row.Cubes)
		}
		fmt.Fprintf(w, "    %-28s k=%d  %-12s used by %d proofs\n", row.Name, row.K, shape, row.Used)
	}
}

func fatal(err error) {
	var fe *core.FlowError
	if errors.As(err, &fe) {
		fmt.Fprintf(os.Stderr, "bespoke-prove: the %s stage failed\n", fe.Stage)
		fmt.Fprintf(os.Stderr, "bespoke-prove:   %v\n", fe.Err)
	} else {
		fmt.Fprintln(os.Stderr, "bespoke-prove:", err)
	}
	os.Exit(2)
}
