// Command bespoke-bench regenerates the paper's evaluation: every table
// and figure, on the reproduction's substrates.
//
// Usage:
//
//	bespoke-bench [-quick] [-exp <id>]
//
// Experiment ids: table1, fig2, fig3, fig4, fig10, fig11, table2, fig12,
// table3, fig13, mutants (tables 4+5 and fig 14), fig15, subneg, rtos,
// table6, all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bespoke/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed benchmark suite and sweeps")
	exp := flag.String("exp", "all", "experiment to run")
	flag.Parse()

	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	w := os.Stdout
	t0 := time.Now()
	defer func() { fmt.Fprintf(w, "\n[%s done in %v]\n", exp, time.Since(t0).Round(time.Millisecond)) }()

	runTailor := func() error {
		rows, err := experiments.TailorAll(quick)
		if err != nil {
			return err
		}
		experiments.Fig11(w, rows)
		experiments.Table2(w, rows)
		return nil
	}
	runMutants := func() error {
		_, err := experiments.RunMutants(w, quick)
		return err
	}

	steps := map[string]func() error{
		"table1":  func() error { return experiments.Table1(w, quick) },
		"fig2":    func() error { return experiments.Fig2(w, quick) },
		"fig3":    func() error { return experiments.Fig3(w) },
		"fig4":    func() error { return experiments.Fig4(w) },
		"fig10":   func() error { _, err := experiments.Fig10(w, quick); return err },
		"fig11":   runTailor,
		"table2":  runTailor,
		"fig12":   func() error { _, err := experiments.Fig12(w, quick); return err },
		"table3":  func() error { _, err := experiments.Table3(w, quick); return err },
		"fig13":   func() error { _, err := experiments.Fig13(w, quick); return err },
		"mutants": runMutants,
		"table4":  runMutants,
		"table5":  runMutants,
		"fig14":   runMutants,
		"fig15":   func() error { _, err := experiments.Fig15(w, quick); return err },
		"subneg":  func() error { _, err := experiments.SubnegStudy(w, quick); return err },
		"rtos":    func() error { _, err := experiments.RunRTOS(w); return err },
		"table6":  func() error { experiments.Table6(w); return nil },
	}
	if exp == "all" {
		order := []string{"table1", "table6", "fig2", "fig3", "fig4", "fig10",
			"fig11", "fig12", "table3", "fig13", "mutants", "fig15", "subneg", "rtos"}
		for _, id := range order {
			fmt.Fprintf(w, "\n##### %s #####\n", id)
			if err := steps[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	f, ok := steps[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return f()
}
