// Command bespoke-load replays the benchmark catalog against a running
// bespoke-serve instance and reports latency percentiles and cache
// behavior: how many requests were served cold, coalesced onto another
// request's flow, or hit the memory/disk cache layers.
//
// Usage:
//
//	bespoke-load [-addr http://localhost:8372] [-n 1000] [-c 8] [-seeds 4]
//
// Requests cycle deterministically through (benchmark, seed) pairs, so a
// replay with S seeds over B benchmarks has exactly B*S distinct cache
// keys: the first arrival of each pair is a cold flow (or a disk hit on
// a warmed cache), everything after is a memory hit or a coalesced join.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bespoke/internal/experiments"
	"bespoke/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8372", "bespoke-serve base URL")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	seeds := flag.Int("seeds", 4, "distinct workload seeds per benchmark")
	quick := flag.Bool("quick", false, "trimmed 5-benchmark suite instead of the full catalog")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request flow budget (sent as timeout_ms)")
	wait := flag.Duration("wait", 0, "poll /healthz this long for the server to come up before starting")
	maxRetries := flag.Int("max-retries", 20, "429 retries per request before giving up")
	expectSource := flag.String("expect-source", "", "comma-separated sources every response must come from (CI assertion)")
	flag.Parse()
	if flag.NArg() != 0 || *n <= 0 || *c <= 0 || *seeds <= 0 || *maxRetries < 0 {
		fmt.Fprintln(os.Stderr, "usage: bespoke-load [flags]")
		os.Exit(2)
	}
	if err := run(*addr, *n, *c, *seeds, *quick, *timeout, *wait, *maxRetries, *expectSource); err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-load:", err)
		os.Exit(1)
	}
}

// shot is one prepared request body.
type shot struct {
	name string
	seed uint64
	body []byte
}

// result is one served request's outcome.
type result struct {
	ms      float64
	source  string
	retries int
	// backoff is the total time this request slept between 429 retries.
	backoff time.Duration
}

func run(addr string, n, c, seeds int, quick bool, timeout, wait time.Duration, maxRetries int, expectSource string) error {
	if wait > 0 {
		if err := waitHealthy(addr, wait); err != nil {
			return err
		}
	}
	shots, err := buildShots(quick, seeds, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d requests over %d (benchmark, seed) pairs at concurrency %d against %s\n",
		n, len(shots), c, addr)

	var (
		next    atomic.Int64
		mu      sync.Mutex
		results []result
		errs    []string
		wg      sync.WaitGroup
	)
	client := &http.Client{Timeout: timeout + 30*time.Second}
	t0 := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := fire(client, addr, shots[i%len(shots)], maxRetries)
				mu.Lock()
				if err != nil {
					errs = append(errs, err.Error())
				} else {
					results = append(results, res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	report(results, errs, n, c, elapsed)
	if len(errs) > 0 {
		return fmt.Errorf("%d/%d requests failed (first: %s)", len(errs), n, errs[0])
	}
	if expectSource != "" {
		return checkSources(results, expectSource)
	}
	return nil
}

// buildShots prepares one request body per (benchmark, seed) pair.
func buildShots(quick bool, seeds int, timeout time.Duration) ([]*shot, error) {
	var shots []*shot
	for _, b := range experiments.Suite(quick) {
		for s := 0; s < seeds; s++ {
			req := &serve.Request{
				Source:    b.Source,
				Workload:  serve.WireWorkload(b.Workload(uint64(s))),
				TimeoutMs: timeout.Milliseconds(),
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", b.Name, s, err)
			}
			shots = append(shots, &shot{name: b.Name, seed: uint64(s), body: body})
		}
	}
	return shots, nil
}

// fire posts one request, retrying 429s with exponential backoff and
// jitter (capped so an overload cannot stall a client forever).
func fire(client *http.Client, addr string, sh *shot, maxRetries int) (result, error) {
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := client.Post(addr+"/v1/tailor", "application/json", bytes.NewReader(sh.body))
		if err != nil {
			return result{}, fmt.Errorf("%s/%d: %w", sh.name, sh.seed, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return result{}, fmt.Errorf("%s/%d: reading body: %w", sh.name, sh.seed, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries {
			d := retryDelay(raw, attempt)
			backoff += d
			time.Sleep(d)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return result{}, fmt.Errorf("%s/%d: HTTP %d: %s", sh.name, sh.seed, resp.StatusCode, summarize(raw))
		}
		var body serve.Response
		if err := json.Unmarshal(raw, &body); err != nil {
			return result{}, fmt.Errorf("%s/%d: decoding response: %w", sh.name, sh.seed, err)
		}
		return result{
			ms:      float64(time.Since(t0).Nanoseconds()) / 1e6,
			source:  body.Source,
			retries: attempt,
			backoff: backoff,
		}, nil
	}
}

// backoffCap bounds any single retry sleep.
const backoffCap = 10 * time.Second

// retryDelay computes the attempt's backoff: the server's Retry-After
// estimate (or a 250ms fallback) doubled per prior attempt, capped, and
// spread with +-25% jitter so a fleet of rejected clients does not
// stampede back in lockstep.
func retryDelay(raw []byte, attempt int) time.Duration {
	base := 250 * time.Millisecond
	var body serve.ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error.RetryAfterMs > 0 {
		base = time.Duration(body.Error.RetryAfterMs) * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	// Jitter in [-25%, +25%) of the deterministic delay.
	d += time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d
}

func summarize(raw []byte) string {
	var body serve.ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error.Message != "" {
		return body.Error.Kind + ": " + body.Error.Message
	}
	s := string(raw)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

func report(results []result, errs []string, n, c int, elapsed time.Duration) {
	lat := make([]float64, 0, len(results))
	bySource := map[string]int{}
	retries := 0
	var backoff time.Duration
	for _, r := range results {
		lat = append(lat, r.ms)
		bySource[r.source]++
		retries += r.retries
		backoff += r.backoff
	}
	sort.Float64s(lat)
	fmt.Printf("done in %.1fs: %d ok, %d failed, %.1f req/s\n",
		elapsed.Seconds(), len(results), len(errs), float64(len(results))/elapsed.Seconds())
	if len(lat) > 0 {
		fmt.Printf("latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			pct(lat, 50), pct(lat, 90), pct(lat, 99), lat[len(lat)-1])
	}
	fmt.Printf("sources: cold=%d coalesced=%d memory=%d disk=%d (429 retries: %d, total backoff %.1fs)\n",
		bySource["cold"], bySource["coalesced"], bySource["memory"], bySource["disk"],
		retries, backoff.Seconds())
	if len(lat) > 0 {
		fmt.Printf("markdown: | %d | %d | %.1f | %.1f | %d | %d | %d | %d |\n",
			n, c, pct(lat, 50), pct(lat, 99),
			bySource["cold"], bySource["coalesced"], bySource["memory"], bySource["disk"])
	}
}

// pct reads the p-th percentile from sorted samples (nearest-rank).
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func checkSources(results []result, allowed string) error {
	ok := map[string]bool{}
	for _, s := range strings.Split(allowed, ",") {
		ok[strings.TrimSpace(s)] = true
	}
	for _, r := range results {
		if !ok[r.source] {
			return fmt.Errorf("response served from %q, want one of %s", r.source, allowed)
		}
	}
	fmt.Printf("all %d responses served from {%s}\n", len(results), allowed)
	return nil
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", addr, wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
