// Command msp430-asm assembles an MSP430 source file and prints a
// listing (address, encoded words, decoded instruction).
//
// Usage:
//
//	msp430-asm [-ihex out.hex] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bespoke/internal/asm"
)

func main() {
	ihex := flag.String("ihex", "", "also write the image as Intel HEX to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msp430-asm [-ihex out.hex] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "msp430-asm:", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "msp430-asm:", err)
		os.Exit(1)
	}
	fmt.Printf("; origin %#04x, %d bytes, %d instructions\n", p.Origin, len(p.Bytes), len(p.InstAddrs))
	for _, addr := range p.InstAddrs {
		in := p.Insts[addr]
		fmt.Printf("%04x:  %04x  %v\n", addr, p.Word(addr), in)
	}
	syms := make([]string, 0, len(p.Symbols))
	for s := range p.Symbols {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	fmt.Println("; symbols:")
	for _, s := range syms {
		fmt.Printf(";   %-16s %#04x\n", s, p.Symbols[s])
	}
	if *ihex != "" {
		f, err := os.Create(*ihex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msp430-asm:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := p.WriteIHex(f); err != nil {
			fmt.Fprintln(os.Stderr, "msp430-asm:", err)
			os.Exit(1)
		}
		fmt.Printf("; wrote %s\n", *ihex)
	}
}
