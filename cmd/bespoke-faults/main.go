// Command bespoke-faults runs the gate-level fault-injection campaigns:
// cut validation (every removed gate stuck at its claimed constant must
// be invisible; the opposite constant must be detectable), the SEU
// vulnerability comparison between the baseline and the bespoke design,
// and the combinational SET resilience signoff (seeded transient pulses
// on gate outputs, classified masked / latched-silent / visible and
// aggregated into per-module vulnerability maps).
//
// Usage:
//
//	bespoke-faults [-bench all|quick|name,...] [-faults N] [-seu N] [-set N]
//	               [-set-budget F] [-map] [-markdown] [-scalar]
//	               [-workers N] [-seed S] [-timeout D]
//
// Campaigns run on the bit-parallel backend by default (63 faulty worlds
// plus a golden guard lane per simulator pass); -scalar forces the
// one-run-per-fault engine. Either way the summary and the -markdown
// tables report campaign throughput (injections/sec, lanes/batch).
//
// The command exits nonzero if any claimed-constant injection diverges
// (the activity analysis would be wrong) or if -set-budget is exceeded
// by the bespoke design's architecturally visible SET fraction (the
// resilience signoff rejects the tailored core).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/faultinject"
	"bespoke/internal/report"
)

func main() {
	benches := flag.String("bench", "quick", "benchmarks: all, quick, or a comma-separated list")
	faults := flag.Int("faults", 96, "stuck-at injections sampled per campaign (0 = every cut site)")
	seus := flag.Int("seu", 48, "random SEU injections per design")
	sets := flag.Int("set", 48, "random SET injections per design (0 disables the resilience stage)")
	setBudget := flag.Float64("set-budget", 0, "tolerated visible SET fraction on the bespoke design (0 = report only, negative = zero tolerance)")
	showMap := flag.Bool("map", false, "print the per-module SET vulnerability maps")
	markdown := flag.Bool("markdown", false, "render tables as markdown (for the experiment docs)")
	scalar := flag.Bool("scalar", false, "force the scalar one-run-per-fault backend instead of 64-lane batches")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "campaign sampling seed")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for all campaigns (0 = unlimited)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	list, err := pick(*benches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-faults:", err)
		os.Exit(2)
	}
	cfg := campaignConfig{
		opts:      faultinject.Options{Workers: *workers, MaxFaults: *faults, Seed: *seed, Scalar: *scalar},
		seus:      *seus,
		sets:      *sets,
		setBudget: *setBudget,
		showMap:   *showMap,
		markdown:  *markdown,
	}
	if err := run(ctx, list, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-faults:", err)
		os.Exit(1)
	}
}

// quick is the subset used by CI and local smoke runs.
var quick = []string{"binSearch", "intAVG", "intFilt", "mult", "dbg"}

func pick(spec string) ([]*bench.Benchmark, error) {
	var names []string
	switch spec {
	case "all":
		var list []*bench.Benchmark
		for _, b := range bench.All() {
			list = append(list, b)
		}
		return list, nil
	case "quick":
		names = quick
	default:
		names = strings.Split(spec, ",")
	}
	var list []*bench.Benchmark
	for _, n := range names {
		b := bench.ByName(strings.TrimSpace(n))
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q", n)
		}
		list = append(list, b)
	}
	return list, nil
}

// campaignConfig bundles the campaign knobs.
type campaignConfig struct {
	opts      faultinject.Options
	seus      int
	sets      int
	setBudget float64
	showMap   bool
	markdown  bool
}

func run(ctx context.Context, list []*bench.Benchmark, cfg campaignConfig) error {
	cutT := report.NewTable("Cut validation (stuck-at campaigns)",
		"Bench", "Cut sites", "Injected", "Claimed diverged", "Opposite diverged")
	seuT := report.NewTable("SEU vulnerability (baseline vs bespoke)",
		"Bench", "Cells base", "Cells bespoke", "Site savings", "DFFs base", "DFFs bespoke", "Vuln base", "Vuln bespoke")
	setT := report.NewTable("SET resilience (baseline vs bespoke)",
		"Bench", "Sites base", "Sites bespoke", "Site savings",
		"Msk base", "Lat base", "Vis base", "Msk besp", "Lat besp", "Vis besp")
	modT := report.NewTable("SET per-module vulnerability map",
		"Bench", "Design", "Module", "Sites", "Injected", "Masked", "Latched", "Visible")
	thrT := report.NewTable("Campaign throughput",
		"Bench", "Injections", "Sim passes", "Lanes/batch", "Elapsed", "Inj/s")
	var total throughput
	bad := 0
	var violations []string
	for _, b := range list {
		prog, err := b.Prog()
		if err != nil {
			return err
		}
		w := b.Workload(1)
		fmt.Printf("tailoring %s...\n", b.Name)
		tailorOpts := core.Options{}
		if cfg.sets > 0 {
			tailorOpts.Resilience = &core.ResilienceOptions{
				Faults:     cfg.sets,
				Seed:       cfg.opts.Seed,
				Workers:    cfg.opts.Workers,
				MaxVisible: cfg.setBudget,
				Run:        faultinject.TailorGate,
			}
		}
		res, err := core.Tailor(ctx, prog, w, tailorOpts)
		var rep *core.ResilienceReport
		if err != nil {
			var re *core.ResilienceError
			if !errors.As(err, &re) {
				return fmt.Errorf("%s: tailor: %w", b.Name, err)
			}
			// The resilience signoff rejected the tailored core: keep the
			// report so the tables still show what the campaign saw, and
			// fail after the full catalog has been characterized.
			mod, frac := re.WorstModule()
			violations = append(violations,
				fmt.Sprintf("%s: %v (worst module %s at %s visible)", b.Name, re, mod, report.Pct(frac)))
			rep = re.Report
			// Rerun without the budget to get the cores for the
			// remaining campaigns.
			tailorOpts.Resilience = nil
			res, err = core.Tailor(ctx, prog, w, tailorOpts)
			if err != nil {
				return fmt.Errorf("%s: tailor: %w", b.Name, err)
			}
		} else {
			rep = res.Resilience
		}

		var thr throughput
		claimed, err := faultinject.StuckAtClaimed(ctx, res.BaselineCore, prog, w, res.Analysis, cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: claimed campaign: %w", b.Name, err)
		}
		opposite, err := faultinject.StuckAtOpposite(ctx, res.BaselineCore, prog, w, res.Analysis, cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: opposite campaign: %w", b.Name, err)
		}
		cutT.AddRow(b.Name, fmt.Sprint(claimed.Sites), fmt.Sprint(claimed.Injected),
			fmt.Sprint(claimed.Divergent()), fmt.Sprint(opposite.Divergent()))
		if claimed.Divergent() > 0 {
			bad++
			for _, d := range claimed.Diverged {
				fmt.Fprintf(os.Stderr, "%s: MISMATCH %s: %s (%s)\n", b.Name, d.Fault, d.Outcome, d.Detail)
			}
		}

		bCells, bDffs := faultinject.Sites(res.BaselineCore.N)
		sCells, sDffs := faultinject.Sites(res.BespokeCore.N)
		seuBase, err := faultinject.SEUCampaign(ctx, res.BaselineCore, prog, w, cfg.seus, cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: baseline SEU campaign: %w", b.Name, err)
		}
		seuBesp, err := faultinject.SEUCampaign(ctx, res.BespokeCore, prog, w, cfg.seus, cfg.opts)
		if err != nil {
			return fmt.Errorf("%s: bespoke SEU campaign: %w", b.Name, err)
		}
		seuT.AddRow(b.Name,
			fmt.Sprint(bCells), fmt.Sprint(sCells), report.Pct(1-float64(sCells)/float64(bCells)),
			fmt.Sprint(bDffs), fmt.Sprint(sDffs),
			vuln(seuBase), vuln(seuBesp))

		thr.add(claimed, opposite, seuBase, seuBesp)
		total.add(claimed, opposite, seuBase, seuBesp)
		thrT.AddRow(b.Name, fmt.Sprint(thr.injections), fmt.Sprint(thr.batches),
			fmt.Sprint(thr.lanes), fmt.Sprintf("%.2fs", thr.elapsed.Seconds()), thr.rate())

		if rep != nil {
			setT.AddRow(b.Name,
				fmt.Sprint(rep.Baseline.Sites), fmt.Sprint(rep.Bespoke.Sites),
				report.Pct(1-float64(rep.Bespoke.Sites)/float64(rep.Baseline.Sites)),
				fmt.Sprint(rep.Baseline.Masked), fmt.Sprint(rep.Baseline.Latched), fmt.Sprint(rep.Baseline.Visible),
				fmt.Sprint(rep.Bespoke.Masked), fmt.Sprint(rep.Bespoke.Latched), fmt.Sprint(rep.Bespoke.Visible))
			addModuleRows(modT, b.Name, "base", rep.Baseline.Modules)
			addModuleRows(modT, b.Name, "bespoke", rep.Bespoke.Modules)
		}
	}
	render := func(t *report.Table) {
		if cfg.markdown {
			t.WriteMarkdown(os.Stdout)
		} else {
			t.Write(os.Stdout)
		}
	}
	render(cutT)
	render(seuT)
	if len(setT.Rows) > 0 {
		render(setT)
	}
	if cfg.showMap && len(modT.Rows) > 0 {
		render(modT)
	}
	render(thrT)
	backend := "bit-parallel"
	if cfg.opts.Scalar {
		backend = "scalar"
	}
	fmt.Printf("\n%s backend: %d injections across %d simulator passes (%d lanes/batch) in %.2fs — %s injections/sec\n",
		backend, total.injections, total.batches, total.lanes, total.elapsed.Seconds(), total.rate())
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) had claimed-constant divergence: the analysis is unsound", bad)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		return fmt.Errorf("%d benchmark(s) failed the SET resilience signoff", len(violations))
	}
	fmt.Println("\nAll claimed-constant injections were invisible: the cut set is validated.")
	return nil
}

func addModuleRows(t *report.Table, benchName, design string, mods []core.ModuleVuln) {
	for _, m := range mods {
		t.AddRow(benchName, design, m.Module,
			fmt.Sprint(m.Sites), fmt.Sprint(m.Injected),
			fmt.Sprint(m.Masked), fmt.Sprint(m.Latched), fmt.Sprint(m.Visible))
	}
}

// throughput aggregates campaign-level injection performance.
type throughput struct {
	injections int
	batches    int
	lanes      int
	elapsed    time.Duration
}

func (t *throughput) add(reps ...*faultinject.Report) {
	for _, r := range reps {
		t.injections += r.Injected
		t.batches += r.Batches
		if r.LanesPerBatch > t.lanes {
			t.lanes = r.LanesPerBatch
		}
		t.elapsed += r.Elapsed
	}
}

// rate formats injections per second of injection wall-clock time.
func (t *throughput) rate() string {
	if t.elapsed <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(t.injections)/t.elapsed.Seconds())
}

// vuln formats the fraction of SEU injections that were not masked.
func vuln(r *faultinject.Report) string {
	if r.Injected == 0 {
		return "-"
	}
	return report.Pct(float64(r.Divergent()) / float64(r.Injected))
}
