// Command bespoke-faults runs the gate-level fault-injection campaigns:
// cut validation (every removed gate stuck at its claimed constant must
// be invisible; the opposite constant must be detectable) and the SEU
// vulnerability comparison between the baseline and the bespoke design.
//
// Usage:
//
//	bespoke-faults [-bench all|quick|name,...] [-faults N] [-seu N] [-workers N] [-seed S] [-timeout D]
//
// The command exits nonzero if any claimed-constant injection diverges -
// that would mean the activity analysis (and therefore the tailored
// silicon) is wrong.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/faultinject"
	"bespoke/internal/report"
)

func main() {
	benches := flag.String("bench", "quick", "benchmarks: all, quick, or a comma-separated list")
	faults := flag.Int("faults", 96, "stuck-at injections sampled per campaign (0 = every cut site)")
	seus := flag.Int("seu", 48, "random SEU injections per design")
	workers := flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "campaign sampling seed")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for all campaigns (0 = unlimited)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	list, err := pick(*benches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-faults:", err)
		os.Exit(2)
	}
	if err := run(ctx, list, faultinject.Options{Workers: *workers, MaxFaults: *faults, Seed: *seed}, *seus); err != nil {
		fmt.Fprintln(os.Stderr, "bespoke-faults:", err)
		os.Exit(1)
	}
}

// quick is the subset used by CI and local smoke runs.
var quick = []string{"binSearch", "intAVG", "intFilt", "mult", "dbg"}

func pick(spec string) ([]*bench.Benchmark, error) {
	var names []string
	switch spec {
	case "all":
		var list []*bench.Benchmark
		for _, b := range bench.All() {
			list = append(list, b)
		}
		return list, nil
	case "quick":
		names = quick
	default:
		names = strings.Split(spec, ",")
	}
	var list []*bench.Benchmark
	for _, n := range names {
		b := bench.ByName(strings.TrimSpace(n))
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q", n)
		}
		list = append(list, b)
	}
	return list, nil
}

func run(ctx context.Context, list []*bench.Benchmark, opts faultinject.Options, seus int) error {
	cutT := report.NewTable("Cut validation (stuck-at campaigns)",
		"Bench", "Cut sites", "Injected", "Claimed diverged", "Opposite diverged")
	seuT := report.NewTable("SEU vulnerability (baseline vs bespoke)",
		"Bench", "Cells base", "Cells bespoke", "Site savings", "DFFs base", "DFFs bespoke", "Vuln base", "Vuln bespoke")
	bad := 0
	for _, b := range list {
		prog, err := b.Prog()
		if err != nil {
			return err
		}
		w := b.Workload(1)
		fmt.Printf("tailoring %s...\n", b.Name)
		res, err := core.Tailor(ctx, prog, w, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: tailor: %w", b.Name, err)
		}

		claimed, err := faultinject.StuckAtClaimed(ctx, res.BaselineCore, prog, w, res.Analysis, opts)
		if err != nil {
			return fmt.Errorf("%s: claimed campaign: %w", b.Name, err)
		}
		opposite, err := faultinject.StuckAtOpposite(ctx, res.BaselineCore, prog, w, res.Analysis, opts)
		if err != nil {
			return fmt.Errorf("%s: opposite campaign: %w", b.Name, err)
		}
		cutT.AddRow(b.Name, fmt.Sprint(claimed.Sites), fmt.Sprint(claimed.Injected),
			fmt.Sprint(claimed.Divergent()), fmt.Sprint(opposite.Divergent()))
		if claimed.Divergent() > 0 {
			bad++
			for _, d := range claimed.Diverged {
				fmt.Fprintf(os.Stderr, "%s: MISMATCH %s: %s (%s)\n", b.Name, d.Fault, d.Outcome, d.Detail)
			}
		}

		bCells, bDffs := faultinject.Sites(res.BaselineCore.N)
		sCells, sDffs := faultinject.Sites(res.BespokeCore.N)
		seuBase, err := faultinject.SEUCampaign(ctx, res.BaselineCore, prog, w, seus, opts)
		if err != nil {
			return fmt.Errorf("%s: baseline SEU campaign: %w", b.Name, err)
		}
		seuBesp, err := faultinject.SEUCampaign(ctx, res.BespokeCore, prog, w, seus, opts)
		if err != nil {
			return fmt.Errorf("%s: bespoke SEU campaign: %w", b.Name, err)
		}
		seuT.AddRow(b.Name,
			fmt.Sprint(bCells), fmt.Sprint(sCells), report.Pct(1-float64(sCells)/float64(bCells)),
			fmt.Sprint(bDffs), fmt.Sprint(sDffs),
			vuln(seuBase), vuln(seuBesp))
	}
	cutT.Write(os.Stdout)
	seuT.Write(os.Stdout)
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) had claimed-constant divergence: the analysis is unsound", bad)
	}
	fmt.Println("\nAll claimed-constant injections were invisible: the cut set is validated.")
	return nil
}

// vuln formats the fraction of SEU injections that were not masked.
func vuln(r *faultinject.Report) string {
	if r.Injected == 0 {
		return "-"
	}
	return report.Pct(float64(r.Divergent()) / float64(r.Injected))
}
