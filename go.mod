module bespoke

go 1.22
