package bespoke

// One testing.B benchmark per table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus microbenchmarks of the
// substrates and ablations of the design choices DESIGN.md calls out.
// Domain results are attached with b.ReportMetric so a bench run doubles
// as a results table.

import (
	"context"
	"io"
	"testing"

	"bespoke/internal/bench"
	"bespoke/internal/cells"
	"bespoke/internal/core"
	"bespoke/internal/cpu"
	"bespoke/internal/cut"
	"bespoke/internal/experiments"
	"bespoke/internal/faultinject"
	"bespoke/internal/layout"
	"bespoke/internal/netlist"
	"bespoke/internal/power"
	"bespoke/internal/symexec"
	"bespoke/internal/synth"
)

// --- Tables and figures -------------------------------------------------

func BenchmarkTable1_Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02_Profiling(b *testing.B) {
	var inter float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Profile(bench.ByName("binSearch"), 5)
		if err != nil {
			b.Fatal(err)
		}
		inter = r.Intersection
	}
	b.ReportMetric(100*inter, "%untoggled-profiled")
}

func BenchmarkFig03_DieCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04_ScrambledIntFilt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_UsableGates(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			frac += r.Fraction
		}
		frac /= float64(len(rows))
	}
	b.ReportMetric(100*frac, "%usable-avg")
}

func BenchmarkFig11_Savings(b *testing.B) {
	var gate, area, power float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TailorAll(true)
		if err != nil {
			b.Fatal(err)
		}
		gate, area, power = 0, 0, 0
		for _, r := range rows {
			gate += r.GateSavings
			area += r.AreaSavings
			power += r.PowerSavings
		}
		n := float64(len(rows))
		gate, area, power = gate/n, area/n, power/n
	}
	b.ReportMetric(100*gate, "%gate-savings")
	b.ReportMetric(100*area, "%area-savings")
	b.ReportMetric(100*power, "%power-savings")
}

func BenchmarkTable2_Slack(b *testing.B) {
	var slack, vminSave float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TailorAll(true)
		if err != nil {
			b.Fatal(err)
		}
		slack, vminSave = 0, 0
		for _, r := range rows {
			slack += r.SlackFrac
			vminSave += r.TotalPowerVmin
		}
		n := float64(len(rows))
		slack, vminSave = slack/n, vminSave/n
	}
	b.ReportMetric(100*slack, "%slack-avg")
	b.ReportMetric(100*vminSave, "%power-savings-at-vmin")
}

func BenchmarkFig12_Coarse(b *testing.B) {
	var vs float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		vs = 0
		for _, r := range rows {
			vs += r.PowerVsCoarse
		}
		vs /= float64(len(rows))
	}
	b.ReportMetric(100*vs, "%power-vs-coarse")
}

func BenchmarkTable3_Verification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13_MultiProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4and5_Fig14_Mutants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMutants(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_PowerGating(b *testing.B) {
	var save float64
	for i := 0; i < b.N; i++ {
		m, err := experiments.Fig15(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		save = 0
		for _, v := range m {
			save += v
		}
		save /= float64(len(m))
	}
	b.ReportMetric(100*save, "%oracle-gating-savings")
}

func BenchmarkSubneg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SubnegStudy(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTOS(b *testing.B) {
	var osOnly float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRTOS(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		osOnly = rows[0].Untoggled
	}
	b.ReportMetric(100*osOnly, "%os-only-untoggled")
}

// --- Substrate microbenchmarks -------------------------------------------

// BenchmarkGateSimulation measures concrete gate-level simulation speed.
func BenchmarkGateSimulation(b *testing.B) {
	bm := bench.ByName("tea8")
	p := bm.MustProg()
	c := cpu.Build()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := core.RunWorkload(context.Background(), c, p, bm.Workload(1))
		if err != nil {
			b.Fatal(err)
		}
		cycles = tr.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
}

// BenchmarkBitParallelCampaign measures the batched fault-campaign
// path: one 64-lane simulator pass settles 63 SEU injections plus the
// golden guard lane. Workers is pinned to 1 so the committed number is
// per-core throughput, comparable against BenchmarkScalarCampaign.
func BenchmarkBitParallelCampaign(b *testing.B) { benchCampaign(b, false) }

// BenchmarkScalarCampaign is the one-run-per-fault counterpart of
// BenchmarkBitParallelCampaign: the same 63-fault seeded SEU schedule,
// one scalar simulation per fault on a single worker.
func BenchmarkScalarCampaign(b *testing.B) { benchCampaign(b, true) }

func benchCampaign(b *testing.B, scalar bool) {
	bm := bench.ByName("mult")
	p := bm.MustProg()
	c := cpu.Build()
	w := bm.Workload(1)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := faultinject.SEUCampaign(context.Background(), c, p, w, 63,
			faultinject.Options{Workers: 1, Seed: 9, Scalar: scalar})
		if err != nil {
			b.Fatal(err)
		}
		rate = float64(rep.Injected) / rep.Elapsed.Seconds()
	}
	b.ReportMetric(rate, "inj/s")
}

// BenchmarkISASimulation measures golden-model speed for comparison.
func BenchmarkISASimulation(b *testing.B) {
	bm := bench.ByName("tea8")
	for i := 0; i < b.N; i++ {
		if _, err := bm.RunISA(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreElaboration measures netlist generation.
func BenchmarkCoreElaboration(b *testing.B) {
	var gates int
	for i := 0; i < b.N; i++ {
		gates = cpu.Build().N.CellCount()
	}
	b.ReportMetric(float64(gates), "gates")
}

// BenchmarkSymbolicAnalysis measures Algorithm 1 on a branchy benchmark.
func BenchmarkSymbolicAnalysis(b *testing.B) {
	p := bench.ByName("binSearch").MustProg()
	var cyc uint64
	for i := 0; i < b.N; i++ {
		res, _, err := symexec.Analyze(context.Background(), p, symexec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cyc = res.Cycles
	}
	b.ReportMetric(float64(cyc), "sym-cycles")
}

// BenchmarkCutAndResynthesis measures the netlist transformation stages.
func BenchmarkCutAndResynthesis(b *testing.B) {
	p := bench.ByName("intAVG").MustProg()
	res, c, err := symexec.Analyze(context.Background(), p, symexec.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var kept int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n2 := c.Clone()
		if _, err := cut.Apply(n2.N, res.Toggled, res.ConstVal); err != nil {
			b.Fatal(err)
		}
		var keep []netlist.GateID
		keep = append(keep, n2.ROM.Inputs()...)
		keep = append(keep, n2.RAM.Inputs()...)
		synth.Optimize(n2.N, keep)
		kept = n2.N.CellCount()
	}
	b.ReportMetric(float64(kept), "kept-gates")
}

// BenchmarkTailorFlow measures the complete flow end to end.
func BenchmarkTailorFlow(b *testing.B) {
	bm := bench.ByName("div")
	var savings float64
	for i := 0; i < b.N; i++ {
		res, err := core.Tailor(context.Background(), bm.MustProg(), bm.Workload(1), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		savings = res.PowerSavings
	}
	b.ReportMetric(100*savings, "%power-savings")
}

// BenchmarkNetlistCodec measures the canonical binary encoder and
// decoder on the full CPU netlist (the tailored-core cache's hot path).
func BenchmarkNetlistCodec(b *testing.B) {
	n := cpu.Build().N
	enc := netlist.Encode(n)
	b.Run("encode", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			bytes = len(netlist.Encode(n))
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netlist.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTailorCacheHit measures rehydrating a tailored design from
// the content-addressed cache against re-running the flow.
func BenchmarkTailorCacheHit(b *testing.B) {
	bm := bench.ByName("div")
	tc := core.NewTailorCache()
	if _, err := tc.Tailor(context.Background(), bm.MustProg(), bm.Workload(1), core.Options{}); err != nil {
		b.Fatal(err)
	}
	var gates int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tc.Tailor(context.Background(), bm.MustProg(), bm.Workload(1), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gates = res.Bespoke.Gates
	}
	b.ReportMetric(float64(gates), "bespoke-gates")
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblation_MergeThreshold compares the paper's merge-at-first-
// re-encounter (threshold 1) against the default exact-unrolling window:
// aggressive merging trades untoggled-gate precision for analysis time.
func BenchmarkAblation_MergeThreshold(b *testing.B) {
	p := bench.ByName("binSearch").MustProg()
	for _, th := range []int{1, 64} {
		th := th
		name := "merge1"
		if th == 64 {
			name = "merge64"
		}
		b.Run(name, func(b *testing.B) {
			var untog float64
			for i := 0; i < b.N; i++ {
				res, c, err := symexec.Analyze(context.Background(), p, symexec.Options{MergeThreshold: th})
				if err != nil {
					b.Fatal(err)
				}
				untog = float64(res.UntoggledCount(c.N)) / float64(c.N.CellCount())
			}
			b.ReportMetric(100*untog, "%untoggled")
		})
	}
}

// BenchmarkAblation_NoResynthesis isolates the re-synthesis stage's
// contribution ("toggled gates left with floating outputs ... removed").
func BenchmarkAblation_NoResynthesis(b *testing.B) {
	p := bench.ByName("intAVG").MustProg()
	res, c, err := symexec.Analyze(context.Background(), p, symexec.Options{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, resynth bool) {
		var kept int
		for i := 0; i < b.N; i++ {
			n2 := c.Clone()
			if _, err := cut.Apply(n2.N, res.Toggled, res.ConstVal); err != nil {
				b.Fatal(err)
			}
			if resynth {
				var keep []netlist.GateID
				keep = append(keep, n2.ROM.Inputs()...)
				keep = append(keep, n2.RAM.Inputs()...)
				synth.Optimize(n2.N, keep)
			}
			kept = n2.N.CellCount()
		}
		b.ReportMetric(float64(kept), "kept-gates")
	}
	b.Run("cut-only", func(b *testing.B) { run(b, false) })
	b.Run("cut+resynth", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_XPropagation measures the cost of three-valued
// simulation versus concrete simulation on the same workload.
func BenchmarkAblation_XPropagation(b *testing.B) {
	bm := bench.ByName("intAVG")
	p := bm.MustProg()
	b.Run("concrete", func(b *testing.B) {
		c := cpu.Build()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunWorkload(context.Background(), c, p, bm.Workload(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := symexec.Analyze(context.Background(), p, symexec.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_WireModel isolates the routed-wire contribution to
// power: the same design and activity with and without wire parasitics.
func BenchmarkAblation_WireModel(b *testing.B) {
	bm := bench.ByName("intAVG")
	p := bm.MustProg()
	c := cpu.Build()
	tr, err := core.RunWorkload(context.Background(), c, p, bm.Workload(1))
	if err != nil {
		b.Fatal(err)
	}
	lib := cells.TSMC65()
	place := layout.Place(c.N, lib)
	noWire := *place
	noWire.WireLenUm = make([]float64, len(place.WireLenUm))

	b.Run("with-wires", func(b *testing.B) {
		var uw float64
		for i := 0; i < b.N; i++ {
			uw = power.Analyze(c.N, lib, place, tr.Toggles, tr.Cycles, 100e6, 1.0).TotalUW
		}
		b.ReportMetric(uw, "uW")
	})
	b.Run("no-wires", func(b *testing.B) {
		var uw float64
		for i := 0; i < b.N; i++ {
			uw = power.Analyze(c.N, lib, &noWire, tr.Toggles, tr.Cycles, 100e6, 1.0).TotalUW
		}
		b.ReportMetric(uw, "uW")
	})
}
