// Multiapp: one chip, several programs. A licensee amortizing mask costs
// tailors a single bespoke processor to a family of applications (the
// paper's Section 3.5 / Figure 13 scenario) and still saves area and
// power over the general purpose part.
package main

import (
	"context"
	"fmt"
	"log"

	"bespoke/internal/asm"
	"bespoke/internal/bench"
	"bespoke/internal/core"
)

func main() {
	// Three applications from the benchmark suite: an averaging sensor
	// kernel, a FIR filter (hardware MAC user), and a run-length encoder.
	apps := []*bench.Benchmark{
		bench.ByName("intAVG"),
		bench.ByName("intFilt"),
		bench.ByName("rle"),
	}
	var progs []*asm.Program
	var loads []*core.Workload
	for _, b := range apps {
		progs = append(progs, b.MustProg())
		loads = append(loads, b.Workload(1))
	}

	single, err := core.Tailor(context.Background(), progs[0], loads[0], core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	multi, err := core.TailorMulti(context.Background(), progs, loads, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one bespoke chip for intAVG + intFilt + rle")
	fmt.Printf("  baseline:          %5d gates, %6.1f uW\n", multi.Baseline.Gates, multi.Baseline.Power.TotalUW)
	fmt.Printf("  bespoke (intAVG):  %5d gates, %6.1f uW  (savings %.1f%%)\n",
		single.Bespoke.Gates, single.Bespoke.Power.TotalUW, 100*single.PowerSavings)
	fmt.Printf("  bespoke (3 apps):  %5d gates, %6.1f uW  (savings %.1f%%)\n",
		multi.Bespoke.Gates, multi.Bespoke.Power.TotalUW, 100*multi.PowerSavings)

	// Every application must still run, bit-exact, on the shared design.
	for i, b := range apps {
		tr, err := core.RunWorkload(context.Background(), multi.BespokeCore, progs[i], loads[i])
		if err != nil {
			log.Fatalf("%s on the shared design: %v", b.Name, err)
		}
		m, err := b.RunISA(1)
		if err != nil {
			log.Fatal(err)
		}
		match := len(tr.Out) == len(m.Out)
		for j := 0; match && j < len(tr.Out); j++ {
			match = tr.Out[j] == m.Out[j]
		}
		fmt.Printf("  %-8s on shared design: %d outputs, matches golden model: %v\n",
			b.Name, len(tr.Out), match)
	}
}
