// Quickstart: tailor the general purpose microcontroller to a tiny
// threshold-detector application and print what the bespoke methodology
// saves - the library's one-screen introduction.
package main

import (
	"context"
	"fmt"
	"log"

	"bespoke/internal/asm"
	"bespoke/internal/core"
)

// app polls the P1 sensor port 16 times and counts readings above a
// threshold. It never multiplies, never uses the debugger, and never
// takes an interrupt - a bespoke processor for it needs none of that
// hardware.
const app = `
        .org 0xE000
start:  mov #0x5A80, &WDTCTL    ; hold the watchdog
        mov #STACKTOP, sp
        mov #100, r10           ; threshold
        clr r11                 ; hits
        mov #16, r12
loop:   mov &P1IN, r4           ; sample the sensor port
        cmp r10, r4
        jlo skip
        inc r11
skip:   dec r12
        jnz loop
        mov r11, &OUTPORT       ; report
        dint
        jmp $                   ; halt convention
        .org 0xFFFE
        .word start
`

func main() {
	prog, err := asm.Assemble(app)
	if err != nil {
		log.Fatal(err)
	}

	// A representative workload for power measurement: sensor values
	// arriving on P1 over time.
	w := &core.Workload{}
	for c := uint64(0); c < 2000; c += 131 {
		w.P1 = append(w.P1, core.P1Step{At: c, Value: uint16(50 + 7*c%160)})
	}

	res, err := core.Tailor(context.Background(), prog, w, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bespoke quickstart: threshold detector")
	fmt.Printf("  baseline: %5d gates, %7.0f um2, %6.1f uW\n",
		res.Baseline.Gates, res.Baseline.Power.AreaUm2, res.Baseline.Power.TotalUW)
	fmt.Printf("  bespoke:  %5d gates, %7.0f um2, %6.1f uW\n",
		res.Bespoke.Gates, res.Bespoke.Power.AreaUm2, res.Bespoke.Power.TotalUW)
	fmt.Printf("  savings:  gates %.1f%%, area %.1f%%, power %.1f%%\n",
		100*res.GateSavings, 100*res.AreaSavings, 100*res.PowerSavings)
	fmt.Printf("  exposed slack %.1f%% -> Vmin %.2f V -> power savings %.1f%%\n",
		100*res.Bespoke.Timing.SlackFrac, res.Bespoke.Timing.Vmin, 100*res.PowerSavingsVmin)

	// The tailored design still runs the unmodified binary.
	tr, err := core.RunWorkload(context.Background(), res.BespokeCore, prog, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  bespoke design executed the app: output=%v after %d cycles\n", tr.Out, tr.Cycles)
}
