// Infield: product-lifecycle support for bespoke processors (the paper's
// Section 5.3). Shows (1) checking whether a bug-fix update already runs
// on the deployed bespoke silicon, (2) hardening a design against common
// bugs by co-designing with generated mutants, and (3) the
// Turing-complete subneg fallback for arbitrary updates.
package main

import (
	"context"
	"fmt"
	"log"

	"bespoke/internal/asm"
	"bespoke/internal/bench"
	"bespoke/internal/core"
	"bespoke/internal/mutate"
	"bespoke/internal/symexec"
)

func main() {
	b := bench.ByName("rle")
	app, appCore, err := symexec.Analyze(context.Background(), b.MustProg(), symexec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// (1) Which single-operator bug fixes does the deployed design
	// already support (mutant gates are a subset of kept gates)?
	muts, err := mutate.Generate(b)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := mutate.CheckSupport(context.Background(), b, app, muts, mutate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rle: %d candidate bug-fix updates, %d supported by the deployed bespoke design\n",
		sup.Total, sup.Supported)
	byType := mutate.CountByType(muts)
	for _, ty := range []mutate.Type{mutate.TypeI, mutate.TypeII, mutate.TypeIII} {
		fmt.Printf("  type %-3s %2d mutants, %2d supported\n", ty, byType[ty], sup.SupportedByType[ty])
	}

	// (2) Hardened design: tailor to the app plus every mutant.
	kept := 0
	for _, t := range sup.Union.Toggled {
		if t {
			kept++
		}
	}
	appKept := 0
	for _, t := range app.Toggled {
		if t {
			appKept++
		}
	}
	fmt.Printf("hardened design keeps %d gates (app alone: %d, baseline: %d)\n",
		kept, appKept, appCore.N.CellCount())

	// (3) subneg-enhanced design: arbitrary updates forever.
	sn := bench.Subneg()
	appOnly, err := core.Tailor(context.Background(), b.MustProg(), b.Workload(1), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	combined, err := core.TailorMulti(
		context.Background(),
		[]*asm.Program{b.MustProg(), sn.MustProg()},
		[]*core.Workload{b.Workload(1), sn.Workload(1)},
		core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subneg-enhanced: area %.0f -> %.0f um2 (%.1f%% overhead), still %.1f%% below baseline\n",
		appOnly.Bespoke.Power.AreaUm2, combined.Bespoke.Power.AreaUm2,
		100*(combined.Bespoke.Power.AreaUm2/appOnly.Bespoke.Power.AreaUm2-1),
		100*combined.AreaSavings)

	// Prove it: run a subneg "update" program on the combined design.
	tr, err := core.RunWorkload(context.Background(), combined.BespokeCore, sn.MustProg(), sn.Workload(7))
	if err != nil {
		log.Fatalf("subneg update on combined design: %v", err)
	}
	fmt.Printf("arbitrary update executed on the bespoke chip: out=%v\n", tr.Out)
}
