// Diegraph: a textual rendering of the paper's die graphs (Figures 3, 4
// and 10) - which parts of the processor two applications can and cannot
// exercise, module by module.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"bespoke/internal/bench"
	"bespoke/internal/symexec"
)

func main() {
	a, b := bench.ByName("FFT"), bench.ByName("binSearch")
	if len(os.Args) == 3 {
		a, b = bench.ByName(os.Args[1]), bench.ByName(os.Args[2])
		if a == nil || b == nil {
			log.Fatalf("unknown benchmark (choose from %v)", names())
		}
	}

	ra, core, err := symexec.Analyze(context.Background(), a.MustProg(), symexec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rb, _, err := symexec.Analyze(context.Background(), b.MustProg(), symexec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	byMod := core.N.GatesByModule()
	mods := make([]string, 0, len(byMod))
	for m := range byMod {
		mods = append(mods, m)
	}
	sort.Strings(mods)

	fmt.Printf("die graph: %s vs %s ('#': used by both, 'a'/'b': used by one, '.': dead weight)\n\n", a.Name, b.Name)
	for _, m := range mods {
		gates := byMod[m]
		var both, onlyA, onlyB, neither int
		for _, g := range gates {
			ta, tb := ra.Toggled[g], rb.Toggled[g]
			switch {
			case ta && tb:
				both++
			case ta:
				onlyA++
			case tb:
				onlyB++
			default:
				neither++
			}
		}
		const width = 50
		scale := func(n int) int { return (n*width + len(gates)/2) / len(gates) }
		bar := strings.Repeat("#", scale(both)) +
			strings.Repeat("a", scale(onlyA)) +
			strings.Repeat("b", scale(onlyB))
		if len(bar) < width {
			bar += strings.Repeat(".", width-len(bar))
		}
		fmt.Printf("%-14s %s  %4d gates, %3d%% removable for both\n",
			m, bar[:width], len(gates), 100*neither/len(gates))
	}
}

func names() []string {
	var out []string
	for _, b := range bench.All() {
		out = append(out, b.Name)
	}
	return out
}
